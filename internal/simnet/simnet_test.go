package simnet

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func quickCfg(n int, seed uint64) Config {
	return Config{
		N: n, Seed: seed,
		Duration: 40, Warmup: 10,
		Paranoid: true,
	}
}

func TestRunBasic(t *testing.T) {
	r, err := Run(quickCfg(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Ticks == 0 {
		t.Fatal("no measured ticks")
	}
	if r.TotalRate() <= 0 {
		t.Fatal("zero handoff overhead in a mobile network")
	}
	if r.MeanLevels < 1 {
		t.Fatalf("mean levels = %v", r.MeanLevels)
	}
	if r.GiantFraction <= 0.5 {
		t.Fatalf("giant fraction = %v; network too sparse", r.GiantFraction)
	}
	if r.F0 <= 0 {
		t.Fatal("no level-0 link events under mobility")
	}
	if s := r.Summary(); len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickCfg(60, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(60, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.PhiRate != b.PhiRate || a.GammaRate != b.GammaRate || a.F0 != b.F0 {
		t.Fatalf("non-deterministic: φ %v/%v γ %v/%v f0 %v/%v",
			a.PhiRate, b.PhiRate, a.GammaRate, b.GammaRate, a.F0, b.F0)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	a, _ := Run(quickCfg(60, 1))
	b, _ := Run(quickCfg(60, 2))
	if a.PhiRate == b.PhiRate && a.GammaRate == b.GammaRate && a.F0 == b.F0 {
		t.Fatal("different seeds produced identical measurements")
	}
}

func TestStaticNetworkHasNoHandoff(t *testing.T) {
	cfg := quickCfg(80, 3)
	cfg.Mobility = MobilityStatic
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRate() != 0 {
		t.Fatalf("static network produced overhead %v", r.TotalRate())
	}
	if r.F0 != 0 {
		t.Fatalf("static network produced link events: f0 = %v", r.F0)
	}
}

func TestRandomDirectionModelRuns(t *testing.T) {
	cfg := quickCfg(60, 4)
	cfg.Mobility = MobilityDirection
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRate() <= 0 {
		t.Fatal("no overhead under random direction")
	}
}

func TestBFSHopModelRuns(t *testing.T) {
	cfg := quickCfg(50, 5)
	cfg.HopModel = HopBFS
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRate() <= 0 {
		t.Fatal("no overhead with BFS hop model")
	}
}

func TestTrackStatesAndClasses(t *testing.T) {
	cfg := quickCfg(80, 6)
	cfg.TrackStates = true
	cfg.TrackClasses = true
	// Fig. 3's adjacent-transition property is an infinitesimal-interval
	// statement; sample finely enough that per-tick movement is ~2% of
	// R_TX (experiment E3 sweeps this interval explicitly).
	cfg.ScanInterval = 0.2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.States.Samples() == 0 {
		t.Fatal("no state samples collected")
	}
	if p, n := r.States.P1(1); n == 0 || p <= 0 || p >= 1 {
		t.Fatalf("P1(1) = %v over %d obs", p, n)
	}
	frac, total := r.States.UnitTransitionFraction()
	if total == 0 {
		t.Fatal("no state transitions observed")
	}
	// Fig. 3 premise: with a fine scan interval, transitions are
	// mostly unit steps.
	if frac < 0.8 {
		t.Fatalf("unit transition fraction = %v", frac)
	}
	if r.Classes.Total() == 0 {
		t.Fatal("no reorg triggers classified")
	}
}

func TestHopSampling(t *testing.T) {
	cfg := quickCfg(100, 7)
	cfg.SampleHops = 10
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HopMeanByLevel) < 2 || r.HopMeanByLevel[1] <= 0 {
		t.Fatalf("hop means = %v", r.HopMeanByLevel)
	}
	// h_k grows with level.
	for k := 2; k < len(r.HopMeanByLevel); k++ {
		if r.HopMeanByLevel[k] != 0 && r.HopMeanByLevel[k] < r.HopMeanByLevel[1]*0.8 {
			t.Fatalf("h_%d = %v < h_1 = %v", k, r.HopMeanByLevel[k], r.HopMeanByLevel[1])
		}
	}
}

func TestAlphaAndStructure(t *testing.T) {
	r, err := Run(quickCfg(150, 8))
	if err != nil {
		t.Fatal(err)
	}
	// |V_k| decreasing in k.
	for k := 1; k < len(r.NodesByLevel); k++ {
		if r.NodesByLevel[k] >= r.NodesByLevel[k-1] {
			t.Fatalf("|V_%d| = %v >= |V_%d| = %v", k, r.NodesByLevel[k], k-1, r.NodesByLevel[k-1])
		}
		if r.AlphaByLevel[k] <= 1 {
			t.Fatalf("alpha_%d = %v", k, r.AlphaByLevel[k])
		}
	}
}

func TestObserverInvoked(t *testing.T) {
	cfg := quickCfg(40, 9)
	count := 0
	var lastT float64
	cfg.Observer = func(ev ObsEvent) {
		count++
		if ev.Time <= lastT {
			t.Fatalf("observer times not increasing: %v after %v", ev.Time, lastT)
		}
		lastT = ev.Time
		if ev.Hierarchy == nil || ev.Diff == nil || len(ev.Positions) != 40 {
			t.Fatal("observer payload incomplete")
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	want := int(math.Round((cfg.Warmup + cfg.Duration) / 1.0)) // scan interval defaults to 1s here
	if count < want-2 || count > want+2 {
		t.Fatalf("observer called %d times, want ~%d", count, want)
	}
}

func TestStickyElectorReducesReorg(t *testing.T) {
	base := quickCfg(100, 10)
	base.Duration = 60
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sticky := base
	sticky.Elector = cluster.StickyLCA{}
	r2, err := Run(sticky)
	if err != nil {
		t.Fatal(err)
	}
	// Hysteresis must not increase reorganization churn.
	if r2.GammaEntryRate > r1.GammaEntryRate*1.1 {
		t.Fatalf("sticky γ entry rate %v vs memoryless %v", r2.GammaEntryRate, r1.GammaEntryRate)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Run(Config{N: 50, Mobility: "bogus"}); err == nil {
		t.Fatal("bogus mobility accepted")
	}
	if _, err := Run(Config{N: 50, HopModel: "bogus"}); err == nil {
		t.Fatal("bogus hop model accepted")
	}
}
