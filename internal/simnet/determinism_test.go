package simnet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestRunDeterminism is the regression test behind the manetlint
// rules: the same seeded scenario, run twice, must produce
// byte-for-byte identical serialized results and identical per-tick
// trace output. Any nondeterminism introduced anywhere in the
// simulation stack (map iteration order, stray randomness, shared rng
// streams) shows up here as a diff.
func TestRunDeterminism(t *testing.T) {
	cfg := simnet.Config{
		N:        48,
		Seed:     7,
		Duration: 20,
		Warmup:   5,
	}

	run := func() (resultsJSON []byte, traceOut []byte) {
		t.Helper()
		var buf bytes.Buffer
		tr := trace.New(&buf)
		c := cfg
		c.Observer = tr.Observer()
		r, err := simnet.Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("trace close: %v", err)
		}
		// Config carries funcs and interfaces the encoder rejects;
		// shadow it — everything measured lives in the other fields.
		data, err := json.Marshal(struct {
			*simnet.Results
			Config struct{}
		}{Results: r})
		if err != nil {
			t.Fatalf("marshal results: %v", err)
		}
		return data, buf.Bytes()
	}

	res1, trace1 := run()
	res2, trace2 := run()

	if !bytes.Equal(res1, res2) {
		t.Errorf("serialized results differ between identical seeded runs:\nrun1: %s\nrun2: %s", res1, res2)
	}
	if len(trace1) == 0 {
		t.Fatal("trace output is empty; determinism comparison is vacuous")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("trace output differs between identical seeded runs")
	}
}
