package simnet_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// TestIncrementalMatchesOracle is the end-to-end equivalence contract
// of Config.Maintainer: for every scenario — elector variants, churn,
// forced top, static networks — and across the serial/parallel ×
// scan/kinetic execution matrix, the incremental (delta-patched)
// maintainer must produce byte-identical Results (minus Config) and a
// byte-identical per-tick trace to the oracle full rebuild. The serial
// scan leg runs with every-tick invariant checks so the
// incremental-hierarchy-equal oracle differential stays hot throughout
// the run; the other legs pin the same bytes without rechecking.
func TestIncrementalMatchesOracle(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"base", simnet.Config{
			N: 48, Seed: 7, Duration: 15, Warmup: 4,
		}},
		{"sticky", simnet.Config{
			N: 48, Seed: 11, Duration: 15, Warmup: 4,
			Elector: cluster.StickyLCA{},
		}},
		{"debounced", simnet.Config{
			N: 48, Seed: 13, Duration: 15, Warmup: 4,
			Elector: &cluster.DebouncedLCA{Grace: 2.5, LevelScale: 1.9},
		}},
		{"churn", simnet.Config{
			N: 48, Seed: 17, Duration: 15, Warmup: 4,
			ChurnRate: 0.02, MeanDowntime: 8,
		}},
		{"forced-top", simnet.Config{
			N: 48, Seed: 19, Duration: 15, Warmup: 4,
			TopArity: 4,
		}},
		{"static", simnet.Config{
			N: 40, Seed: 23, Duration: 10, Warmup: 2,
			Mobility: simnet.MobilityStatic,
		}},
		{"tiny", simnet.Config{
			N: 5, Seed: 2, Duration: 12, Warmup: 3,
		}},
		{"gauss-markov", simnet.Config{
			N: 44, Seed: 29, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityGaussMarkov,
		}},
		{"manhattan", simnet.Config{
			N: 44, Seed: 31, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityManhattan,
		}},
		{"hotspot", simnet.Config{
			N: 44, Seed: 37, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityHotspot,
		}},
	}
	legs := []struct {
		name    string
		workers int
		engine  string
		check   bool
	}{
		{"serial-scan", 0, "", true},
		{"par-scan", 3, "", false},
		{"serial-kinetic", 0, simnet.EngineKinetic, false},
		{"par-kinetic", 3, simnet.EngineKinetic, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Fresh elector state per run: the config's elector is
			// stateful for the debounced case, so each leg rebuilds it.
			mkCfg := func() simnet.Config {
				cfg := tc.cfg
				if _, ok := cfg.Elector.(*cluster.DebouncedLCA); ok {
					cfg.Elector = &cluster.DebouncedLCA{Grace: 2.5, LevelScale: 1.9}
				}
				return cfg
			}
			oracleRes, oracleTrace := marshalRun(t, mkCfg())
			if len(oracleTrace) == 0 {
				t.Fatal("trace output is empty; comparison is vacuous")
			}
			for _, leg := range legs {
				leg := leg
				t.Run(leg.name, func(t *testing.T) {
					cfg := mkCfg()
					cfg.Maintainer = simnet.MaintainerIncremental
					cfg.IntraTickParallelism = leg.workers
					cfg.Engine = leg.engine
					if leg.check {
						cfg.CheckLevel = "every-tick"
					}
					incRes, incTrace := marshalRun(t, cfg)
					if !bytes.Equal(oracleRes, incRes) {
						t.Errorf("incremental results differ from oracle:\noracle:      %s\nincremental: %s",
							oracleRes, incRes)
					}
					if !bytes.Equal(oracleTrace, incTrace) {
						t.Errorf("incremental trace differs from oracle")
					}
				})
			}
		})
	}
}

// TestMaintainerConfigValidation: the maintainer knob rejects unknown
// values and accepts the two strategies by name (empty defaults to
// oracle).
func TestMaintainerConfigValidation(t *testing.T) {
	cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Maintainer: "psychic"}
	if _, err := simnet.Run(cfg); err == nil {
		t.Fatal("unknown maintainer accepted")
	}
	for _, m := range []string{"", simnet.MaintainerOracle, simnet.MaintainerIncremental} {
		cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Maintainer: m}
		if _, err := simnet.Run(cfg); err != nil {
			t.Fatalf("maintainer %q rejected: %v", m, err)
		}
	}
}
