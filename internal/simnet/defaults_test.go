package simnet

import (
	"math"
	"strings"
	"testing"
)

// feq compares defaulted config floats exactly: defaults are assigned,
// not computed, so any drift is a bug.
func feq(a, b float64) bool { return math.Abs(a-b) == 0 }

func TestWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want func(t *testing.T, c Config)
	}{
		{"all zero fields take defaults", Config{N: 64}, func(t *testing.T, c Config) {
			if !feq(c.RTX, 100) {
				t.Errorf("RTX = %v, want 100", c.RTX)
			}
			if !feq(c.Degree, 9) {
				t.Errorf("Degree = %v, want 9", c.Degree)
			}
			if !feq(c.Mu, 10) {
				t.Errorf("Mu = %v, want 10", c.Mu)
			}
			if !feq(c.ScanInterval, 1) { // min(1, 0.1·100/10)
				t.Errorf("ScanInterval = %v, want 1", c.ScanInterval)
			}
			if !feq(c.Duration, 300) {
				t.Errorf("Duration = %v, want 300", c.Duration)
			}
			if !feq(c.Warmup, 60) {
				t.Errorf("Warmup = %v, want 60", c.Warmup)
			}
			if c.Mobility != MobilityWaypoint {
				t.Errorf("Mobility = %q, want waypoint", c.Mobility)
			}
			if c.HopModel != HopEuclidean {
				t.Errorf("HopModel = %q, want euclid", c.HopModel)
			}
			if !feq(c.Detour, 1.3) {
				t.Errorf("Detour = %v, want 1.3", c.Detour)
			}
			if c.Hash == nil {
				t.Error("Hash not defaulted")
			}
			if c.HopPairs != 64 {
				t.Errorf("HopPairs = %v, want 64", c.HopPairs)
			}
			if c.TopArity != 12 {
				t.Errorf("TopArity = %v, want 12", c.TopArity)
			}
			if !feq(c.MeanDowntime, 30) {
				t.Errorf("MeanDowntime = %v, want 30", c.MeanDowntime)
			}
		}},
		{"positive values kept", Config{N: 64, RTX: 50, Degree: 6, Mu: 2, ScanInterval: 0.5,
			Duration: 10, Warmup: 5, Detour: 2, MeanDowntime: 7}, func(t *testing.T, c Config) {
			for _, x := range []struct {
				name      string
				got, want float64
			}{
				{"RTX", c.RTX, 50}, {"Degree", c.Degree, 6}, {"Mu", c.Mu, 2},
				{"ScanInterval", c.ScanInterval, 0.5}, {"Duration", c.Duration, 10},
				{"Warmup", c.Warmup, 5}, {"Detour", c.Detour, 2},
				{"MeanDowntime", c.MeanDowntime, 7},
			} {
				if !feq(x.got, x.want) {
					t.Errorf("%s = %v, want %v", x.name, x.got, x.want)
				}
			}
		}},
		{"negative sentinel means exactly zero", Config{N: 64, Warmup: -1, Mu: -1}, func(t *testing.T, c Config) {
			if !feq(c.Warmup, 0) {
				t.Errorf("Warmup = %v, want 0 (explicit -1)", c.Warmup)
			}
			if !feq(c.Mu, 0) {
				t.Errorf("Mu = %v, want 0 (explicit -1)", c.Mu)
			}
		}},
		{"scan interval tracks speed", Config{N: 64, Mu: 50}, func(t *testing.T, c Config) {
			// 0.1·RTX/Mu = 0.1·100/50 = 0.2 < 1 s cap.
			if !feq(c.ScanInterval, 0.2) {
				t.Errorf("ScanInterval = %v, want 0.2", c.ScanInterval)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.want(t, tc.in.withDefaults()) })
	}
}

func TestValidateRejectsExplicitZeros(t *testing.T) {
	cases := []struct {
		name    string
		in      Config
		wantErr string // substring of the validation error; "" = valid
	}{
		{"defaults valid", Config{N: 64}, ""},
		{"explicit zero RTX", Config{N: 64, RTX: -1}, "RTX"},
		{"explicit zero Degree", Config{N: 64, Degree: -1}, "Degree"},
		{"explicit zero ScanInterval", Config{N: 64, ScanInterval: -1}, "ScanInterval"},
		{"explicit zero Duration", Config{N: 64, Duration: -1}, "Duration"},
		{"explicit zero Detour", Config{N: 64, Detour: -1}, "Detour"},
		{"no warmup is fine", Config{N: 64, Warmup: -1}, ""},
		{"zero speed needs static model", Config{N: 64, Mu: -1}, "Mu"},
		{"zero speed static ok", Config{N: 64, Mu: -1, Mobility: MobilityStatic}, ""},
		{"zero detour with BFS hops ok", Config{N: 64, Detour: -1, HopModel: HopBFS}, ""},
		{"churn needs downtime", Config{N: 64, ChurnRate: 0.01, MeanDowntime: -1}, "MeanDowntime"},
		{"N too small", Config{N: 1}, "N"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.in.withDefaults().validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("config accepted, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSteadyStateTickAllocs pins the allocation budget of one
// steady-state scan tick, under both maintenance strategies. Before
// the double-buffered scratch path this was ~24k allocations per tick
// at N=512; the reusable buffers leave only the elector's per-level
// head maps and a few closures (~46 observed at this scale). The
// incremental maintainer must fit the same budget: its dirty sets,
// reverse identity index, descent-path memo, and the par-shard flat
// backings are all tick-over-tick reusable, so delta-driven
// maintenance may not buy its speed with per-tick garbage. The bound
// leaves ~4× headroom to stay robust across Go versions while still
// catching any regression to per-tick rebuilds.
func TestSteadyStateTickAllocs(t *testing.T) {
	for _, maint := range []string{MaintainerOracle, MaintainerIncremental} {
		t.Run(maint, func(t *testing.T) {
			cfg := Config{N: 256, Seed: 7, Warmup: -1, Maintainer: maint}.withDefaults()
			if err := cfg.validate(); err != nil {
				t.Fatal(err)
			}
			lp, err := setupRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			now := 0.0
			step := func() {
				now += cfg.ScanInterval
				lp.step(now)
			}
			// Let pooled capacities reach steady state first.
			for i := 0; i < 30; i++ {
				step()
			}
			avg := testing.AllocsPerRun(20, step)
			const budget = 200
			if avg > budget {
				t.Fatalf("steady-state tick allocates %.0f times, budget %d", avg, budget)
			}
			t.Logf("steady-state tick: %.1f allocs (budget %d)", avg, budget)
		})
	}
}
