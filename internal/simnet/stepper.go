package simnet

import (
	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Stepper drives one simulation tick-by-tick under external control —
// the serve runtime's way of embedding the engine stack as a background
// mobility/link event stream while request workers read the live
// snapshot between steps.
//
// A Stepper reproduces Run exactly: the same ticker cadence, the same
// horizon semantics, the same Results. Driving Step until it returns
// false and then calling Results yields byte-identical output to
// Run(cfg) (pinned by TestStepperMatchesRun).
//
// Concurrency contract: Step mutates the live snapshot; the accessor
// methods (Hierarchy, Positions, ...) expose storage that the *next*
// Step will recycle. Callers interleaving reads with steps must
// externally exclude the two (the serve runtime holds an RWMutex write
// lock around Step and read locks around snapshot use).
type Stepper struct {
	cfg     Config
	lp      *looper
	eng     *sim.Engine
	horizon float64
	done    bool
}

// NewStepper validates cfg and builds the initial snapshot, exactly as
// Run does before its first tick. Callers own the returned Stepper and
// must Close it.
func NewStepper(cfg Config) (*Stepper, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lp, err := setupRun(cfg)
	if err != nil {
		return nil, err
	}
	s := &Stepper{cfg: cfg, lp: lp, eng: sim.NewEngine(), horizon: cfg.Warmup + cfg.Duration}
	s.eng.Ticker(cfg.ScanInterval, cfg.ScanInterval, "scan", func(e *sim.Engine) {
		lp.step(e.Now())
	})
	return s, nil
}

// Step fires the next scan tick and returns true, or returns false
// once the horizon is reached (leaving the clock at the horizon,
// matching RunUntil).
func (s *Stepper) Step() bool {
	if s.done {
		return false
	}
	t, ok := s.eng.NextTime()
	if !ok || t > s.horizon {
		s.eng.AdvanceTo(s.horizon)
		s.done = true
		return false
	}
	s.eng.Step()
	return true
}

// Done reports whether the run has reached its horizon.
func (s *Stepper) Done() bool { return s.done }

// Now returns the current virtual time.
func (s *Stepper) Now() float64 { return s.eng.Now() }

// NextTime reports when the next scan tick fires.
func (s *Stepper) NextTime() (float64, bool) { return s.eng.NextTime() }

// Config returns the defaulted, validated configuration.
func (s *Stepper) Config() Config { return s.cfg }

// Graph returns the live connectivity snapshot.
func (s *Stepper) Graph() *topology.Graph { return s.lp.graph }

// Hierarchy returns the live cluster hierarchy snapshot.
func (s *Stepper) Hierarchy() *cluster.Hierarchy { return s.lp.hier }

// Identities returns the live hierarchical identities snapshot.
func (s *Stepper) Identities() *cluster.Identities { return s.lp.idents }

// Table returns the live CHLM location table.
func (s *Stepper) Table() *lm.Table { return s.lp.table }

// Selector returns the run's server selector.
func (s *Stepper) Selector() *lm.Selector { return s.lp.selector }

// Positions returns the live position slice (mutated in place by Step).
func (s *Stepper) Positions() []geom.Vec { return s.lp.pos }

// Results finalizes the run's measurements; call after Step has
// returned false.
func (s *Stepper) Results() (*Results, error) { return s.lp.st.results(s.cfg) }

// Close releases the run's worker pool.
func (s *Stepper) Close() { s.lp.close() }
