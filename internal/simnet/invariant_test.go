package simnet_test

import (
	"testing"

	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// runWithChecks runs cfg with CheckLevel=every-tick, collecting
// violations instead of panicking, and returns them alongside the
// registry snapshot.
func runWithChecks(t *testing.T, cfg simnet.Config) ([]invariant.Violation, obs.Snapshot) {
	t.Helper()
	var violations []invariant.Violation
	reg := obs.NewRegistry()
	cfg.CheckLevel = invariant.LevelEveryTick
	cfg.OnViolation = func(v invariant.Violation) {
		if len(violations) < 8 {
			violations = append(violations, v)
		}
	}
	cfg.Metrics = reg
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return violations, reg.Snapshot()
}

// TestInvariantsCleanScenarios runs every-tick checks over a spread of
// configurations and requires zero violations — the harness must not
// cry wolf on healthy runs.
func TestInvariantsCleanScenarios(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"base", simnet.Config{N: 48, Seed: 7, Duration: 15, Warmup: 4}},
		{"churn", simnet.Config{N: 48, Seed: 11, Duration: 15, Warmup: 4,
			ChurnRate: 0.02, MeanDowntime: 8}},
		{"bfs-hops", simnet.Config{N: 48, Seed: 5, Duration: 12, Warmup: 3,
			HopModel: simnet.HopBFS, SampleHops: 2, HopPairs: 16}},
		{"static", simnet.Config{N: 40, Seed: 13, Duration: 10, Warmup: 2,
			Mobility: simnet.MobilityStatic}},
		{"naive-naming", simnet.Config{N: 40, Seed: 9, Duration: 12, Warmup: 3,
			NaiveNaming: true}},
		{"no-top-cap", simnet.Config{N: 48, Seed: 3, Duration: 12, Warmup: 3,
			TopArity: -1}},
		{"parallel", simnet.Config{N: 48, Seed: 7, Duration: 15, Warmup: 4,
			IntraTickParallelism: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, snap := runWithChecks(t, tc.cfg)
			for _, v := range violations {
				t.Errorf("%v", v)
			}
			if got := snap.Counters[obs.InvariantTicksChecked]; got == 0 {
				t.Fatalf("checker never ran (ticks_checked = 0)")
			}
			if got := snap.Counters[obs.InvariantViolations]; got != int64(len(violations)) {
				t.Errorf("violation counter %d does not match %d reported", got, len(violations))
			}
		})
	}
}

// TestInvariantsDefaultScenarioEveryTick is the acceptance run: the
// default lmsim scenario (N=256, 300 s measured, 60 s warmup, seed 1)
// with every-tick checks must produce zero violations.
func TestInvariantsDefaultScenarioEveryTick(t *testing.T) {
	cfg := simnet.Config{N: 256, Seed: 1, Duration: 300, Warmup: 60}
	if testing.Short() {
		cfg.Duration, cfg.Warmup = 30, 6
	}
	violations, snap := runWithChecks(t, cfg)
	for _, v := range violations {
		t.Errorf("%v", v)
	}
	if got := snap.Counters[obs.InvariantTicksChecked]; got == 0 {
		t.Fatalf("checker never ran (ticks_checked = 0)")
	}
}

// TestInvariantsSampledMode checks the sampled cadence: roughly one
// tick in sixteen is audited, and the default scenario stays clean.
func TestInvariantsSampledMode(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := simnet.Config{
		N: 48, Seed: 7, Duration: 32, Warmup: -1,
		ScanInterval: 1,
		CheckLevel:   invariant.LevelSampled,
		Metrics:      reg,
	}
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := reg.Snapshot()
	checked := snap.Counters[obs.InvariantTicksChecked]
	if checked != 2 { // ticks 1 and 17 of 32
		t.Errorf("sampled mode checked %d ticks, want 2", checked)
	}
	if v := snap.Counters[obs.InvariantViolations]; v != 0 {
		t.Errorf("sampled run found %d violations, want 0", v)
	}
}

// TestSeededFaultCaught proves the harness catches an intentionally
// injected handoff bug: a periodically misrouted table entry must be
// flagged by the rebuild differential at exactly the injection ticks.
func TestSeededFaultCaught(t *testing.T) {
	var violations []invariant.Violation
	cfg := simnet.Config{
		N: 48, Seed: 7, Duration: 45, Warmup: -1,
		ScanInterval: 1,
		CheckLevel:   invariant.LevelEveryTick,
		Fault:        simnet.FaultHandoffMisroute,
		OnViolation: func(v invariant.Violation) {
			violations = append(violations, v)
		},
	}
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(violations) == 0 {
		t.Fatal("seeded handoff fault produced no violations")
	}
	for _, v := range violations {
		if v.Check != "table-rebuild-equal" {
			t.Errorf("fault flagged by %q at tick %d, want table-rebuild-equal", v.Check, v.Tick)
		}
		if v.Tick%37 != 0 {
			t.Errorf("violation at tick %d, want a multiple of the injection period 37", v.Tick)
		}
		if v.Seed != cfg.Seed {
			t.Errorf("violation seed %d, want %d", v.Seed, cfg.Seed)
		}
		if v.Dump == "" {
			t.Error("violation carries no state dump")
		}
	}
}

// TestViolationPanicsWithoutCallback pins the default delivery: with
// no OnViolation callback, the first violation panics with the full
// Violation value.
func TestViolationPanicsWithoutCallback(t *testing.T) {
	cfg := simnet.Config{
		N: 48, Seed: 7, Duration: 45, Warmup: -1,
		ScanInterval: 1,
		CheckLevel:   invariant.LevelEveryTick,
		Fault:        simnet.FaultHandoffMisroute,
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic from the unhandled violation")
		}
		v, ok := r.(invariant.Violation)
		if !ok {
			t.Fatalf("panic value %T, want invariant.Violation", r)
		}
		if v.Check != "table-rebuild-equal" {
			t.Errorf("panicked on %q, want table-rebuild-equal", v.Check)
		}
	}()
	_, _ = simnet.Run(cfg)
}

// TestCheckLevelValidation pins config handling of the knob.
func TestCheckLevelValidation(t *testing.T) {
	if _, err := simnet.Run(simnet.Config{N: 8, Duration: 1, Warmup: -1, CheckLevel: "bogus"}); err == nil {
		t.Error("bogus CheckLevel accepted")
	}
	if _, err := simnet.Run(simnet.Config{N: 8, Duration: 1, Warmup: -1, Fault: "bogus"}); err == nil {
		t.Error("bogus Fault accepted")
	}
}
