package simnet

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
)

// stateRun holds the mutable measurement state of one Run.
type stateRun struct {
	cfg    Config
	region geom.Disc

	totals        lm.Totals
	states        *cluster.StateTracker
	classes       lm.ClassCounts
	measuredTicks int

	linkEvents int64 // level-0 link state changes during measurement
	deaths     int64 // churn deaths during measurement (E18)

	// Time-averaged hierarchy structure.
	nodesByLevel stats.PerLevel // |V_k|
	edgesByLevel stats.PerLevel // |E_k|
	levelsAvg    stats.Welford  // L per snapshot
	giantFrac    stats.Welford  // fraction of nodes in giant component
	// Cluster-migration link events per level (g'_k numerator).
	migLinkEvents []int64

	// Sampled intra-cluster hop counts h_k.
	hopByLevel stats.PerLevel
	hopScratch *topology.BFSScratch
	hopRng     *rng.Source

	// Reusable per-tick measurement scratch.
	obsGiant             topology.ComponentScratch
	prevLogE, nextLogE   map[cluster.LogicalEdge]struct{}
	prevLiveK, nextLiveK map[uint64]bool
	inCluster            map[int]bool

	// Parallel hop sampling (see hops_par.go): the run's worker pool,
	// per-worker BFS scratches and membership sets, and the speculative
	// candidate batch. All nil/empty for serial runs.
	hopPool  *par.Pool
	hopScrW  []*topology.BFSScratch
	hopInW   []map[int]bool
	hopCands []hopCand
	hopSnaps []rng.Source
}

// bindPool attaches the run's worker pool to the measurement state and
// sizes the per-worker BFS scratches. A nil pool keeps hop sampling on
// the serial path.
func (st *stateRun) bindPool(p *par.Pool) {
	st.hopPool = p
	if p == nil {
		return
	}
	st.hopScrW = make([]*topology.BFSScratch, p.Workers())
	st.hopInW = make([]map[int]bool, p.Workers())
	for w := range st.hopScrW {
		st.hopScrW[w] = topology.NewBFSScratch(st.cfg.N)
		st.hopInW[w] = map[int]bool{}
	}
}

func newStateRun(cfg Config, region geom.Disc) *stateRun {
	return &stateRun{
		cfg:        cfg,
		region:     region,
		states:     cluster.NewStateTracker(),
		classes:    lm.ClassCounts{},
		hopScratch: topology.NewBFSScratch(cfg.N),
		hopRng:     rng.NewRoot(cfg.Seed).Stream("hop-sampling"),
	}
}

// observe accumulates per-snapshot structural statistics.
//
//manet:hotpath
func (st *stateRun) observe(h *cluster.Hierarchy, g *topology.Graph, tick int) {
	st.levelsAvg.Add(float64(h.L()))
	for k := 0; k <= h.L(); k++ {
		lvl := h.Level(k)
		st.nodesByLevel.Add(k, float64(len(lvl.Nodes)))
		st.edgesByLevel.Add(k, float64(lvl.Graph.EdgeCount()))
	}
	giant := st.obsGiant.Giant(g, h.LevelNodes(0))
	st.giantFrac.Add(float64(len(giant)) / float64(st.cfg.N))
}

//manet:hotpath
func (st *stateRun) countLinkEvents(s *topology.DiffScratch, prev, next *topology.Graph) {
	st.linkEvents += int64(len(s.Diff(prev, next)))
}

// countClusterLinkEvents counts level-k cluster link state changes in
// logical ID space, restricted to endpoints that persist across the
// tick — the paper's "cluster migration" link events (i, ii), free of
// relabeling artifacts. This is the g'_k numerator.
//
//manet:hotpath
func (st *stateRun) countClusterLinkEvents(
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	prevT, nextT *lm.Table,
) {
	maxK := prevH.L()
	if nextH.L() > maxK {
		maxK = nextH.L()
	}
	for k := 1; k <= maxK; k++ {
		pe := cluster.LogicalEdgesInto(st.prevLogE, prevH, prevIDs, k)
		ne := cluster.LogicalEdgesInto(st.nextLogE, nextH, nextIDs, k)
		st.prevLogE, st.nextLogE = pe, ne
		if len(pe) == 0 && len(ne) == 0 {
			continue
		}
		prevLive := prevT.LiveAtInto(k, st.prevLiveK)
		nextLive := nextT.LiveAtInto(k, st.nextLiveK)
		st.prevLiveK, st.nextLiveK = prevLive, nextLive
		//lint:ignore hotpath non-escaping persistence predicate, stack-allocated in practice
		persists := func(e cluster.LogicalEdge) bool {
			return prevLive[e.A] && prevLive[e.B] && nextLive[e.A] && nextLive[e.B]
		}
		count := int64(0)
		//lint:ignore maprange commutative integer counting; the result is order-free
		for e := range pe {
			if _, ok := ne[e]; !ok && persists(e) {
				count++
			}
		}
		//lint:ignore maprange commutative integer counting; the result is order-free
		for e := range ne {
			if _, ok := pe[e]; !ok && persists(e) {
				count++
			}
		}
		for len(st.migLinkEvents) <= k {
			st.migLinkEvents = append(st.migLinkEvents, 0)
		}
		st.migLinkEvents[k] += count
	}
}

// sampleHops measures mean intra-cluster hop counts at each level by
// BFS restricted to the cluster's level-0 descendants.
//
//manet:hotpath
func (st *stateRun) sampleHops(h *cluster.Hierarchy, g *topology.Graph) {
	if st.hopPool != nil {
		st.sampleHopsPar(h, g)
		return
	}
	for k := 1; k <= h.L(); k++ {
		clusters := h.LevelNodes(k)
		pairs := 0
		for attempts := 0; attempts < st.cfg.HopPairs*4 && pairs < st.cfg.HopPairs; attempts++ {
			c := clusters[st.hopRng.Intn(len(clusters))]
			//lint:ignore hotpath descendant enumeration, counted in the interval-gated sampling budget
			desc := h.Descendants(k, c)
			if len(desc) < 2 {
				continue
			}
			a := desc[st.hopRng.Intn(len(desc))]
			b := desc[st.hopRng.Intn(len(desc))]
			if a == b {
				continue
			}
			if st.inCluster == nil {
				//lint:ignore hotpath warm-up: the first sample builds the reused membership set
				st.inCluster = make(map[int]bool, len(desc))
			} else {
				clear(st.inCluster)
			}
			inCluster := st.inCluster
			for _, v := range desc {
				inCluster[v] = true
			}
			//lint:ignore hotpath non-escaping membership predicate, stack-allocated in practice
			hops := st.hopScratch.HopCount(g, a, b, func(v int) bool { return inCluster[v] })
			if hops > 0 {
				st.hopByLevel.Add(k, float64(hops))
				pairs++
			}
		}
	}
}

// Results reports one run's measurements. All rates are per node per
// second over the measurement window unless stated otherwise.
type Results struct {
	Config   Config
	Duration float64 // measured window, s

	// Handoff overhead (the paper's φ and γ), packets/node/s.
	PhiRate   float64
	GammaRate float64
	// Per entry level k (index 0 unused).
	PhiRateByLevel   []float64
	GammaRateByLevel []float64
	// Entry-transfer rates (count, not packets).
	PhiEntryRate   float64
	GammaEntryRate float64

	// Location-registration overhead (reference [17]; not part of the
	// paper's φ/γ handoff): first registrations and owner-driven
	// location updates, packets/node/s and per level.
	RegRate           float64
	RegRateByLevel    []float64
	UpdateRate        float64
	UpdateRateByLevel []float64

	// Node migration frequencies by level (the paper's f_k), events
	// per node per second: Mig counts only pure individual migrations,
	// All counts every level-k membership change.
	FMigByLevel []float64
	FAllByLevel []float64

	// Level-0 link state changes per node per second (paper Eq. 4,
	// counting each link event once per endpoint).
	F0 float64

	// Cluster-migration link events per level-k link per second (the
	// paper's g'_k, Eq. 14).
	GPrimeByLevel []float64

	// Time-averaged hierarchy structure.
	MeanLevels     float64
	NodesByLevel   []float64
	EdgesByLevel   []float64
	AlphaByLevel   []float64 // α_k = |V_{k-1}|/|V_k|
	GiantFraction  float64
	HopMeanByLevel []float64 // sampled h_k (0 where unsampled)

	// DeathRate is the measured churn death rate per node per second
	// (0 without churn).
	DeathRate float64

	// Raw accumulators for deeper analysis.
	Totals  lm.Totals
	States  *cluster.StateTracker
	Classes lm.ClassCounts
	Ticks   int
}

func (st *stateRun) results(cfg Config) (*Results, error) {
	T := cfg.Duration
	n := float64(cfg.N)
	if st.measuredTicks == 0 {
		return nil, fmt.Errorf("simnet: no measured ticks (duration %v, scan %v)", cfg.Duration, cfg.ScanInterval)
	}
	// The measured window is the ticks actually accounted.
	T = float64(st.measuredTicks) * cfg.ScanInterval

	r := &Results{
		Config:   cfg,
		Duration: T,
		Totals:   st.totals,
		States:   st.states,
		Classes:  st.classes,
		Ticks:    st.measuredTicks,
	}
	perNodeSec := func(x float64) float64 { return x / (n * T) }

	r.PhiRate = perNodeSec(st.totals.PhiTotal())
	r.GammaRate = perNodeSec(st.totals.GammaTotal())
	r.RegRate = perNodeSec(st.totals.RegTotal())
	r.UpdateRate = perNodeSec(st.totals.UpdateTotal())
	maxL := st.totals.MaxLevel()
	for k := 0; k <= maxL; k++ {
		r.PhiRateByLevel = append(r.PhiRateByLevel, perNodeSec(st.totals.PhiPackets[k]))
		r.GammaRateByLevel = append(r.GammaRateByLevel, perNodeSec(st.totals.GammaPackets[k]))
		r.RegRateByLevel = append(r.RegRateByLevel, perNodeSec(st.totals.RegPackets[k]))
		r.UpdateRateByLevel = append(r.UpdateRateByLevel, perNodeSec(st.totals.UpdatePackets[k]))
		r.FMigByLevel = append(r.FMigByLevel, perNodeSec(float64(st.totals.MigrationEvents[k])))
		r.FAllByLevel = append(r.FAllByLevel, perNodeSec(float64(st.totals.MembershipEvents[k])))
	}
	var phiE, gammaE int64
	for k := 0; k <= maxL; k++ {
		phiE += st.totals.PhiEntries[k]
		gammaE += st.totals.GammaEntries[k]
	}
	r.PhiEntryRate = perNodeSec(float64(phiE))
	r.GammaEntryRate = perNodeSec(float64(gammaE))

	r.F0 = 2 * float64(st.linkEvents) / (n * T)
	r.DeathRate = float64(st.deaths) / (n * T)

	for k := 0; k <= st.edgesByLevel.Max(); k++ {
		meanEdges := st.edgesByLevel.Level(k).Mean()
		var gp float64
		if k < len(st.migLinkEvents) && meanEdges > 0 {
			gp = float64(st.migLinkEvents[k]) / (meanEdges * T)
		}
		r.GPrimeByLevel = append(r.GPrimeByLevel, gp)
		r.EdgesByLevel = append(r.EdgesByLevel, meanEdges)
		r.NodesByLevel = append(r.NodesByLevel, st.nodesByLevel.Level(k).Mean())
	}
	for k := range r.NodesByLevel {
		//lint:ignore floateq exact-zero guard before division (empty level)
		if k == 0 || r.NodesByLevel[k] == 0 {
			r.AlphaByLevel = append(r.AlphaByLevel, 0)
			continue
		}
		r.AlphaByLevel = append(r.AlphaByLevel, r.NodesByLevel[k-1]/r.NodesByLevel[k])
	}
	r.MeanLevels = st.levelsAvg.Mean()
	r.GiantFraction = st.giantFrac.Mean()
	for k := 0; k <= st.hopByLevel.Max(); k++ {
		r.HopMeanByLevel = append(r.HopMeanByLevel, st.hopByLevel.Level(k).Mean())
	}
	return r, nil
}

// TotalRate returns φ + γ packets per node per second — the paper's
// headline quantity.
func (r *Results) TotalRate() float64 { return r.PhiRate + r.GammaRate }

// Summary renders a human-readable digest.
func (r *Results) Summary() string {
	s := fmt.Sprintf("N=%d T=%.0fs L̄=%.2f giant=%.2f\n", r.Config.N, r.Duration, r.MeanLevels, r.GiantFraction)
	s += fmt.Sprintf("φ=%.4f γ=%.4f total=%.4f pkts/node/s (reg=%.4f); f0=%.3f\n",
		r.PhiRate, r.GammaRate, r.TotalRate(), r.RegRate, r.F0)
	for k := 1; k < len(r.PhiRateByLevel); k++ {
		s += fmt.Sprintf("  k=%d: φ_k=%.5f γ_k=%.5f f_k=%.5f |V_k|=%.1f |E_k|=%.1f\n",
			k, r.PhiRateByLevel[k], r.GammaRateByLevel[k], r.FMigByLevel[k],
			at(r.NodesByLevel, k), at(r.EdgesByLevel, k))
	}
	if len(r.Classes) > 0 {
		levels := make([]int, 0, len(r.Classes))
		for k := range r.Classes {
			levels = append(levels, k)
		}
		sort.Ints(levels)
		for _, k := range levels {
			s += fmt.Sprintf("  reorg classes k=%d:", k)
			for _, c := range lm.EventClasses() {
				if n := r.Classes[k][c]; n > 0 {
					s += fmt.Sprintf(" %s=%d", c, n)
				}
			}
			s += "\n"
		}
	}
	return s
}

func at(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}
