package simnet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// marshalRunWithMetrics mirrors marshalRun (par_test.go) with an
// optional metrics registry attached to the config.
func marshalRunWithMetrics(t *testing.T, cfg simnet.Config, reg *obs.Registry) (resultsJSON, traceOut []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf)
	cfg.Observer = tr.Observer()
	cfg.Metrics = reg
	r, err := simnet.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	data, err := json.Marshal(struct {
		*simnet.Results
		Config struct{}
	}{Results: r})
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return data, buf.Bytes()
}

// TestMetricsDoNotPerturbResults is the obs determinism contract: a
// run with a metrics registry attached must produce byte-identical
// Results and per-tick traces to the same run without one.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	cfg := simnet.Config{
		N: 48, Seed: 7, Duration: 15, Warmup: 4,
		SampleHops: 3, HopPairs: 8,
		TrackStates: true, TrackClasses: true,
	}
	plainRes, plainTrace := marshalRunWithMetrics(t, cfg, nil)
	if len(plainTrace) == 0 {
		t.Fatal("trace output is empty; comparison is vacuous")
	}
	obsRes, obsTrace := marshalRunWithMetrics(t, cfg, obs.NewRegistry())
	if !bytes.Equal(plainRes, obsRes) {
		t.Errorf("results differ with metrics on:\noff: %s\non:  %s", plainRes, obsRes)
	}
	if !bytes.Equal(plainTrace, obsTrace) {
		t.Error("traces differ with metrics on")
	}
}

// TestPhaseTimersCoverTick checks the phase accounting is coherent:
// every phase fires once per (applicable) tick, and the disjoint
// sub-phase spans nest inside the tick span, so their wall-time totals
// sum to at most — and in practice almost exactly — the tick total.
func TestPhaseTimersCoverTick(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := simnet.Config{
		N: 48, Seed: 3, Duration: 12, Warmup: 3,
		SampleHops: 2, HopPairs: 8,
		Metrics:  reg,
		Observer: func(simnet.ObsEvent) {},
	}
	r, err := simnet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	tick := snap.Phases[obs.PhaseTick]
	if tick.Count == 0 || tick.Seconds <= 0 {
		t.Fatalf("tick phase not recorded: %+v", tick)
	}
	if got := snap.Counters["sim.ticks"]; got != tick.Count {
		t.Errorf("sim.ticks = %d, tick spans = %d", got, tick.Count)
	}
	if got := snap.Counters["sim.measured_ticks"]; got != int64(r.Ticks) {
		t.Errorf("sim.measured_ticks = %d, Results.Ticks = %d", got, r.Ticks)
	}

	perTick := []string{
		obs.PhaseAdvance, obs.PhaseRebuild, obs.PhaseCluster,
		obs.PhaseDiff, obs.PhaseLMUpdate, obs.PhaseObserver,
	}
	var sub float64
	for _, name := range perTick {
		ps, ok := snap.Phases[name]
		if !ok {
			t.Fatalf("phase %s missing from snapshot", name)
		}
		if ps.Count != tick.Count {
			t.Errorf("phase %s count = %d, want %d", name, ps.Count, tick.Count)
		}
		sub += ps.Seconds
	}
	if ps := snap.Phases[obs.PhaseMeasure]; ps.Count != int64(r.Ticks) {
		t.Errorf("measure count = %d, want %d", ps.Count, r.Ticks)
	}
	sub += snap.Phases[obs.PhaseMeasure].Seconds
	if ps, ok := snap.Phases[obs.PhaseHops]; !ok || ps.Count == 0 {
		t.Errorf("hop sampling phase not recorded: %+v", ps)
	}
	sub += snap.Phases[obs.PhaseHops].Seconds

	// Sub-spans nest strictly inside the tick span; allow a sliver of
	// slack for float accumulation.
	if sub > tick.Seconds*1.001 {
		t.Errorf("sub-phase total %.6fs exceeds tick total %.6fs", sub, tick.Seconds)
	}
	// The sub-phases bracket everything substantive in the loop; if
	// they cover less than half the tick the instrumentation has a
	// hole (generous bound to stay robust on loaded CI machines).
	if sub < tick.Seconds*0.5 {
		t.Errorf("sub-phase total %.6fs covers <50%% of tick total %.6fs", sub, tick.Seconds)
	}
	if snap.Gauges["sim.levels"] <= 0 {
		t.Errorf("sim.levels gauge = %v", snap.Gauges["sim.levels"])
	}
}
