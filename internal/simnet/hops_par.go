package simnet

import (
	"repro/internal/cluster"
	"repro/internal/topology"
)

// Parallel hop sampling. The serial sampler interleaves RNG draws with
// BFS runs, but the draws of one attempt depend only on earlier draws
// — never on a BFS outcome. BFS outcomes only decide when the loop
// stops (the pairs counter). So the sampler can speculate: draw the
// whole attempt budget up front on the serial RNG (recording the RNG
// state after every attempt), run all the BFS probes in parallel, then
// replay the attempts in order applying the serial loop's termination
// rule. If the replay stops early, the RNG is rewound to the snapshot
// after the last attempt the serial loop would have consumed — the
// draws beyond it never happened, as far as the RNG stream and the
// measurements are concerned. Results are byte-identical to the serial
// sampler.

// hopCand is one speculative sampling attempt: the drawn pair and its
// cluster's level-0 descendants, or skip for the attempts the serial
// loop discards before running BFS (degenerate cluster, a == b).
type hopCand struct {
	skip bool
	a, b int
	desc []int
	hops int
}

// sampleHopsPar is the parallel form of sampleHops; the BFS probes of
// one level fan out over the run's worker pool.
//
//manet:hotpath
func (st *stateRun) sampleHopsPar(h *cluster.Hierarchy, g *topology.Graph) {
	for k := 1; k <= h.L(); k++ {
		clusters := h.LevelNodes(k)
		maxAttempts := st.cfg.HopPairs * 4
		if st.cfg.HopPairs <= 0 || len(clusters) == 0 {
			continue
		}

		// Phase 1 (serial): draw every attempt in the budget, snapshot
		// the RNG after each one.
		st.hopCands = st.hopCands[:0]
		st.hopSnaps = st.hopSnaps[:0]
		for attempts := 0; attempts < maxAttempts; attempts++ {
			c := clusters[st.hopRng.Intn(len(clusters))]
			//lint:ignore hotpath descendant enumeration, counted in the interval-gated sampling budget
			desc := h.Descendants(k, c)
			cand := hopCand{skip: true}
			if len(desc) >= 2 {
				a := desc[st.hopRng.Intn(len(desc))]
				b := desc[st.hopRng.Intn(len(desc))]
				if a != b {
					cand = hopCand{a: a, b: b, desc: desc}
				}
			}
			st.hopCands = append(st.hopCands, cand)
			st.hopSnaps = append(st.hopSnaps, *st.hopRng)
		}

		// Phase 2 (parallel): BFS every surviving attempt. Each worker
		// owns its BFS scratch and membership set; each candidate's hops
		// field is a disjoint write.
		//lint:ignore hotpath per-sample shard callback closure, counted in the tick alloc budget
		st.hopPool.RunShards(len(st.hopCands), func(w, s int) {
			cand := &st.hopCands[s]
			if cand.skip {
				return
			}
			in := st.hopInW[w]
			clear(in)
			for _, v := range cand.desc {
				in[v] = true
			}
			//lint:ignore hotpath non-escaping membership predicate, stack-allocated in practice
			cand.hops = st.hopScrW[w].HopCount(g, cand.a, cand.b, func(v int) bool { return in[v] })
		})

		// Phase 3 (serial): replay in attempt order under the serial
		// termination rule, then rewind the RNG to the last consumed
		// attempt.
		pairs := 0
		consumed := len(st.hopCands)
		for i := range st.hopCands {
			cand := &st.hopCands[i]
			if cand.skip || cand.hops <= 0 {
				continue
			}
			st.hopByLevel.Add(k, float64(cand.hops))
			pairs++
			if pairs >= st.cfg.HopPairs {
				consumed = i + 1
				break
			}
		}
		*st.hopRng = st.hopSnaps[consumed-1]
	}
}
