package simnet_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// TestLinkConfigValidation: the link knob rejects unknown values and
// accepts both registered models by name (empty defaults to unitdisk).
func TestLinkConfigValidation(t *testing.T) {
	cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Link: "freespace"}
	if _, err := simnet.Run(cfg); err == nil {
		t.Fatal("unknown link model accepted")
	}
	for _, l := range []string{"", simnet.LinkUnitDisk, simnet.LinkLogShadow} {
		cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Link: l}
		if _, err := simnet.Run(cfg); err != nil {
			t.Fatalf("link %q rejected: %v", l, err)
		}
	}
	cfg = simnet.Config{N: 8, Duration: 2, Warmup: -1, PathLossExp: -1}
	if _, err := simnet.Run(cfg); err == nil {
		t.Fatal("negative path-loss exponent accepted")
	}
}

// TestKineticRejectsScanOnlyLink is the regression for the
// engine/link-model interaction: the kinetic engine's certificates
// assume the exact memoryless unit-disk predicate, so combining it
// with the stateful logshadow model must be a config error naming both
// knobs — not a run that silently maintains the wrong radio.
func TestKineticRejectsScanOnlyLink(t *testing.T) {
	cfg := simnet.Config{
		N: 16, Duration: 4, Warmup: -1,
		Engine: simnet.EngineKinetic, Link: simnet.LinkLogShadow,
	}
	_, err := simnet.Run(cfg)
	if err == nil {
		t.Fatal("kinetic engine accepted the scan-only logshadow link model")
	}
	for _, frag := range []string{simnet.EngineKinetic, simnet.LinkLogShadow, simnet.EngineScan} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
	// The same model under the scan engine is accepted.
	cfg.Engine = simnet.EngineScan
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatalf("scan engine rejected logshadow: %v", err)
	}
}

// TestLogShadowScanBattery runs the lossy link model under the scan
// engine with every-tick invariant checks across the mobility zoo, and
// pins the serial/parallel and repeat-run byte-identity the
// determinism contract demands of a stateful link model.
func TestLogShadowScanBattery(t *testing.T) {
	for _, mob := range simnet.MobilityModels() {
		mob := mob
		t.Run(mob, func(t *testing.T) {
			cfg := simnet.Config{
				N: 44, Seed: 41, Duration: 12, Warmup: 3,
				Mobility: mob, Link: simnet.LinkLogShadow,
				CheckLevel: "every-tick",
			}
			serialRes, serialTrace := marshalRun(t, cfg)
			if len(serialTrace) == 0 {
				t.Fatal("trace output is empty; comparison is vacuous")
			}
			// Repeat run: a stateful link model must still be a pure
			// function of (config, seed).
			againRes, againTrace := marshalRun(t, cfg)
			if !bytes.Equal(serialRes, againRes) || !bytes.Equal(serialTrace, againTrace) {
				t.Error("repeat run diverged: logshadow state is not seed-deterministic")
			}
			pcfg := cfg
			pcfg.CheckLevel = ""
			pcfg.IntraTickParallelism = 3
			parRes, parTrace := marshalRun(t, pcfg)
			if !bytes.Equal(serialRes, parRes) {
				t.Error("parallel results diverge from serial under logshadow")
			}
			if !bytes.Equal(serialTrace, parTrace) {
				t.Error("parallel trace diverges from serial under logshadow")
			}
		})
	}
}

// TestLogShadowIncrementalMatchesOracle extends the maintainer
// differential to the lossy link model (scan engine only): hierarchy
// deltas must be link-model-agnostic.
func TestLogShadowIncrementalMatchesOracle(t *testing.T) {
	cfg := simnet.Config{
		N: 44, Seed: 43, Duration: 12, Warmup: 3,
		Link: simnet.LinkLogShadow,
	}
	oracleRes, oracleTrace := marshalRun(t, cfg)
	inc := cfg
	inc.Maintainer = simnet.MaintainerIncremental
	inc.CheckLevel = "every-tick"
	incRes, incTrace := marshalRun(t, inc)
	if !bytes.Equal(oracleRes, incRes) {
		t.Error("incremental results diverge from oracle under logshadow")
	}
	if !bytes.Equal(oracleTrace, incTrace) {
		t.Error("incremental trace diverges from oracle under logshadow")
	}
}

// TestLogShadowDiffersFromUnitDisk is the sanity complement to the
// equivalence suite: with default shadowing the lossy radio must
// actually change the topology relative to unit disk (same seed), or
// every Z1 "logshadow" cell silently measures the wrong model.
func TestLogShadowDiffersFromUnitDisk(t *testing.T) {
	base := simnet.Config{N: 44, Seed: 47, Duration: 12, Warmup: 3}
	_, udTrace := marshalRun(t, base)
	lossy := base
	lossy.Link = simnet.LinkLogShadow
	_, lsTrace := marshalRun(t, lossy)
	if bytes.Equal(udTrace, lsTrace) {
		t.Fatal("logshadow trace is identical to unitdisk: shadowing had no effect")
	}
}
