package simnet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestStepperMatchesRun pins the Stepper's contract: driving the run
// tick-by-tick produces byte-identical Results and traces to Run(cfg),
// across engines and maintainers.
func TestStepperMatchesRun(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"base", simnet.Config{N: 48, Seed: 7, Duration: 15, Warmup: 4}},
		{"kinetic-incremental", simnet.Config{
			N: 48, Seed: 9, Duration: 12, Warmup: 3,
			Engine: simnet.EngineKinetic, Maintainer: simnet.MaintainerIncremental,
		}},
		{"parallel", simnet.Config{
			N: 48, Seed: 5, Duration: 12, Warmup: 3, IntraTickParallelism: 3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRes, wantTrace := marshalRun(t, tc.cfg)

			cfg := tc.cfg
			var buf bytes.Buffer
			tr := trace.New(&buf)
			cfg.Observer = tr.Observer()
			st, err := simnet.NewStepper(cfg)
			if err != nil {
				t.Fatalf("NewStepper: %v", err)
			}
			defer st.Close()
			ticks := 0
			for st.Step() {
				ticks++
				if now := st.Now(); now <= 0 {
					t.Fatalf("tick %d: Now() = %v", ticks, now)
				}
				if st.Hierarchy() == nil || st.Graph() == nil {
					t.Fatalf("tick %d: nil snapshot", ticks)
				}
			}
			if !st.Done() {
				t.Fatal("Step returned false but Done() is false")
			}
			if st.Step() {
				t.Fatal("Step after done must keep returning false")
			}
			r, err := st.Results()
			if err != nil {
				t.Fatalf("Results: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("trace close: %v", err)
			}
			got, err := json.Marshal(struct {
				*simnet.Results
				Config struct{}
			}{Results: r})
			if err != nil {
				t.Fatalf("marshal results: %v", err)
			}
			if !bytes.Equal(got, wantRes) {
				t.Errorf("Stepper results diverge from Run")
			}
			if !bytes.Equal(buf.Bytes(), wantTrace) {
				t.Errorf("Stepper trace diverges from Run")
			}
			if want := st.Config().Warmup + st.Config().Duration; st.Now() != want {
				t.Errorf("final clock = %v, want horizon %v", st.Now(), want)
			}
		})
	}
}

func TestStepperRejectsBadConfig(t *testing.T) {
	if _, err := simnet.NewStepper(simnet.Config{N: 1}); err == nil {
		t.Fatal("NewStepper accepted N=1")
	}
}
