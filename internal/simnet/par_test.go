package simnet_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// marshalRun executes one simulation and serializes everything except
// Config (funcs/interfaces), plus the per-tick trace stream.
func marshalRun(t *testing.T, cfg simnet.Config) (resultsJSON, traceOut []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf)
	cfg.Observer = tr.Observer()
	r, err := simnet.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	data, err := json.Marshal(struct {
		*simnet.Results
		Config struct{}
	}{Results: r})
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return data, buf.Bytes()
}

// TestParallelMatchesSerial is the end-to-end determinism contract of
// Config.IntraTickParallelism: for every scenario and worker count —
// including worker counts exceeding N — the full serialized Results
// and the per-tick trace must be byte-identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"base", simnet.Config{
			N: 48, Seed: 7, Duration: 15, Warmup: 4,
		}},
		{"churn", simnet.Config{
			N: 48, Seed: 11, Duration: 15, Warmup: 4,
			ChurnRate: 0.02, MeanDowntime: 8,
		}},
		{"tracking", simnet.Config{
			N: 47, Seed: 3, Duration: 15, Warmup: 4,
			TrackStates: true, TrackClasses: true,
		}},
		{"bfs-hops", simnet.Config{
			N: 48, Seed: 5, Duration: 12, Warmup: 3,
			HopModel: simnet.HopBFS, SampleHops: 2, HopPairs: 16,
		}},
		{"tiny", simnet.Config{
			N: 5, Seed: 2, Duration: 12, Warmup: 3,
			SampleHops: 3, HopPairs: 8,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serialRes, serialTrace := marshalRun(t, tc.cfg)
			if len(serialTrace) == 0 {
				t.Fatal("trace output is empty; comparison is vacuous")
			}
			for _, workers := range []int{2, 3, 8} {
				cfg := tc.cfg
				cfg.IntraTickParallelism = workers
				parRes, parTrace := marshalRun(t, cfg)
				if !bytes.Equal(serialRes, parRes) {
					t.Errorf("workers=%d: results differ from serial:\nserial: %s\npar:    %s",
						workers, serialRes, parRes)
				}
				if !bytes.Equal(serialTrace, parTrace) {
					t.Errorf("workers=%d: trace differs from serial", workers)
				}
			}
		})
	}
}

// TestParallelConfigValidation: the knob rejects negative values and
// accepts 0/1 as serial.
func TestParallelConfigValidation(t *testing.T) {
	cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, IntraTickParallelism: -1}
	if _, err := simnet.Run(cfg); err == nil {
		t.Fatal("negative IntraTickParallelism accepted")
	}
	for _, w := range []int{0, 1} {
		cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, IntraTickParallelism: w}
		if _, err := simnet.Run(cfg); err != nil {
			t.Fatalf("IntraTickParallelism=%d rejected: %v", w, err)
		}
	}
}
