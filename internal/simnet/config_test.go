package simnet

import (
	"testing"

	"repro/internal/cluster"
)

func TestNaiveNamingInflatesOverhead(t *testing.T) {
	base := Config{N: 100, Seed: 11, Duration: 60, Warmup: 15}
	withIDs, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	naive := base
	naive.NaiveNaming = true
	without, err := Run(naive)
	if err != nil {
		t.Fatal(err)
	}
	// Head-ID naming re-homes subtrees on every relabel: strictly more
	// handoff traffic (ablation A4's mechanism).
	if without.GammaRate <= withIDs.GammaRate {
		t.Fatalf("naive naming γ %v not above logical-ID γ %v",
			without.GammaRate, withIDs.GammaRate)
	}
}

func TestUncappedTopRuns(t *testing.T) {
	cfg := Config{N: 100, Seed: 12, Duration: 40, Warmup: 10, TopArity: -1, Paranoid: true}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRate() <= 0 {
		t.Fatal("no overhead")
	}
}

func TestForcedTopReducesDepth(t *testing.T) {
	base := Config{N: 150, Seed: 13, Duration: 40, Warmup: 10}
	capped, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	un := base
	un.TopArity = -1
	uncapped, err := Run(un)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MeanLevels > uncapped.MeanLevels {
		t.Fatalf("forced top deepened hierarchy: %v vs %v",
			capped.MeanLevels, uncapped.MeanLevels)
	}
}

func TestDebouncedElectorReducesChurn(t *testing.T) {
	base := Config{N: 120, Seed: 14, Duration: 60, Warmup: 15}
	lit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	deb := base
	deb.Elector = cluster.NewDebouncedLCA(15)
	stab, err := Run(deb)
	if err != nil {
		t.Fatal(err)
	}
	if stab.GammaRate >= lit.GammaRate {
		t.Fatalf("debounced γ %v not below memoryless γ %v", stab.GammaRate, lit.GammaRate)
	}
}

func TestUpdateRateAccounted(t *testing.T) {
	r, err := Run(Config{N: 100, Seed: 15, Duration: 40, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Mobile nodes change clusters, so owner-driven location updates
	// ([17]) must be non-zero and per-level rates must sum to the total.
	if r.UpdateRate <= 0 {
		t.Fatal("no location-update traffic under mobility")
	}
	var sum float64
	for _, v := range r.UpdateRateByLevel {
		sum += v
	}
	if diff := sum - r.UpdateRate; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-level update rates sum %v != total %v", sum, r.UpdateRate)
	}
}

func TestDeterminismIncludesNewCounters(t *testing.T) {
	run := func() *Results {
		r, err := Run(Config{N: 80, Seed: 16, Duration: 30, Warmup: 10})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.UpdateRate != b.UpdateRate || a.RegRate != b.RegRate {
		t.Fatalf("registration counters not deterministic: %v/%v %v/%v",
			a.UpdateRate, b.UpdateRate, a.RegRate, b.RegRate)
	}
}

func TestChurnProducesDeathsAndRegistrations(t *testing.T) {
	base := Config{N: 100, Seed: 21, Duration: 60, Warmup: 15}
	calm, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if calm.DeathRate != 0 {
		t.Fatalf("deaths without churn: %v", calm.DeathRate)
	}
	churny := base
	churny.ChurnRate = 0.01 // ~36 deaths/node/hour
	r, err := Run(churny)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeathRate <= 0 {
		t.Fatal("no deaths under churn")
	}
	// Measured death rate within a factor of the configured rate.
	if r.DeathRate < churny.ChurnRate/4 || r.DeathRate > churny.ChurnRate*4 {
		t.Fatalf("death rate %v far from configured %v", r.DeathRate, churny.ChurnRate)
	}
	// Returning nodes re-register: registration traffic rises.
	if r.RegRate <= calm.RegRate {
		t.Fatalf("churn registration %v not above baseline %v", r.RegRate, calm.RegRate)
	}
}

func TestChurnDeterminism(t *testing.T) {
	cfg := Config{N: 80, Seed: 22, Duration: 30, Warmup: 10, ChurnRate: 0.02}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeathRate != b.DeathRate || a.TotalRate() != b.TotalRate() {
		t.Fatal("churn not deterministic")
	}
}
