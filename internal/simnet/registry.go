// Model registries: the string-keyed mobility and link-model zoos that
// Config selects from. Registration is static (a fixed map plus a
// sorted name list) so validation, CLIs, and the experiment battery
// all agree on the same set and enumerate it deterministically.
package simnet

import (
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/topology"
)

// mobilityCtor builds a mobility model for a defaulted config. src is
// the run's "mobility" stream.
type mobilityCtor func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model

// mobilityRegistry maps Config.Mobility names to constructors. The
// kinetic capability of each model is a property of the constructed
// value (mobility.Kinetic type assertion), not of the registry entry:
// every model here happens to be kinetic-capable.
var mobilityRegistry = map[string]mobilityCtor{
	MobilityWaypoint: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewWaypoint(region, cfg.Mu, src)
	},
	MobilityDirection: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewRandomDirection(region, cfg.Mu, 30, src)
	},
	MobilityStatic: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewStationary(region, src)
	},
	MobilityGroup: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		size := cfg.GroupSize
		if size <= 0 {
			size = 16
		}
		radius := cfg.GroupRadius
		if radius <= 0 {
			radius = 2 * cfg.RTX
		}
		return mobility.NewGroupMobility(region, cfg.Mu, radius, size, src)
	},
	MobilityGaussMarkov: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewGaussMarkov(region, cfg.Mu, 0.75, 1, src)
	},
	MobilityManhattan: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewManhattan(region, cfg.Mu, 2*cfg.RTX, src)
	},
	MobilityHotspot: func(cfg Config, region geom.Disc, src *rng.Source) mobility.Model {
		return mobility.NewHotspot(region, cfg.Mu, 20, 0, 0, src)
	},
}

// mobilityNames is the registry key set in display order (the four
// seed models first, then the zoo additions alphabetically).
var mobilityNames = []string{
	MobilityWaypoint, MobilityDirection, MobilityStatic, MobilityGroup,
	MobilityGaussMarkov, MobilityHotspot, MobilityManhattan,
}

// MobilityModels returns the accepted Config.Mobility names in a
// stable order. The returned slice is fresh; callers may keep it.
func MobilityModels() []string {
	return append([]string(nil), mobilityNames...)
}

// linkSpec is one link-model registry entry: whether the model honors
// the kinetic-compatibility contract (topology.LinkModel.Kinetic,
// duplicated here so Config validation needs no construction), and the
// constructor. root supplies deterministic named streams (shadowing
// seeds).
type linkSpec struct {
	kinetic bool
	build   func(cfg Config, root *rng.Root) topology.LinkModel
}

// linkRegistry maps Config.Link names to their specs.
var linkRegistry = map[string]linkSpec{
	LinkUnitDisk: {
		kinetic: true,
		build: func(cfg Config, root *rng.Root) topology.LinkModel {
			return topology.NewUnitDisk(cfg.RTX)
		},
	},
	LinkLogShadow: {
		kinetic: false,
		build: func(cfg Config, root *rng.Root) topology.LinkModel {
			return topology.NewLogShadow(
				cfg.RTX, cfg.PathLossExp, cfg.ShadowSigma, cfg.LinkMargin,
				root.Stream("linkshadow").Uint64())
		},
	},
}

// linkNames is the registry key set in display order.
var linkNames = []string{LinkUnitDisk, LinkLogShadow}

// LinkModels returns the accepted Config.Link names in a stable order.
// The returned slice is fresh; callers may keep it.
func LinkModels() []string {
	return append([]string(nil), linkNames...)
}

// LinkKinetic reports whether the named link model honors the
// kinetic-compatibility contract (false for unknown names). Exposed so
// test harnesses can gate engine matrices without constructing a run.
func LinkKinetic(name string) bool {
	return linkRegistry[name].kinetic
}
