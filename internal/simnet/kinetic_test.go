package simnet_test

import (
	"bytes"
	"testing"

	"repro/internal/simnet"
)

// TestKineticMatchesScan is the end-to-end equivalence contract of
// Config.Engine: for every scenario, every mobility model, and both
// serial and intra-tick-parallel execution, the event-driven kinetic
// engine must produce byte-identical Results (minus Config) and a
// byte-identical per-tick trace to the default scan engine. Both
// engines advance the mobility model at the same tick instants (so
// the shared RNG stream is consumed identically) and evaluate the same
// link predicate over the same positions; the kinetic engine differs
// only in WHICH pairs it evaluates, which this test pins down as an
// invisible implementation detail.
func TestKineticMatchesScan(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"base", simnet.Config{
			N: 48, Seed: 7, Duration: 15, Warmup: 4,
		}},
		{"churn", simnet.Config{
			N: 48, Seed: 11, Duration: 15, Warmup: 4,
			ChurnRate: 0.02, MeanDowntime: 8,
		}},
		{"tracking", simnet.Config{
			N: 47, Seed: 3, Duration: 15, Warmup: 4,
			TrackStates: true, TrackClasses: true,
		}},
		{"bfs-hops", simnet.Config{
			N: 48, Seed: 5, Duration: 12, Warmup: 3,
			HopModel: simnet.HopBFS, SampleHops: 2, HopPairs: 16,
		}},
		{"tiny", simnet.Config{
			N: 5, Seed: 2, Duration: 12, Warmup: 3,
			SampleHops: 3, HopPairs: 8,
		}},
		{"direction", simnet.Config{
			N: 40, Seed: 13, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityDirection,
		}},
		{"group", simnet.Config{
			N: 48, Seed: 17, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityGroup,
		}},
		{"static", simnet.Config{
			N: 40, Seed: 19, Duration: 10, Warmup: 2,
			Mobility: simnet.MobilityStatic,
		}},
		{"gauss-markov", simnet.Config{
			N: 44, Seed: 23, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityGaussMarkov,
		}},
		{"manhattan", simnet.Config{
			N: 44, Seed: 29, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityManhattan,
		}},
		{"hotspot", simnet.Config{
			N: 44, Seed: 31, Duration: 15, Warmup: 4,
			Mobility: simnet.MobilityHotspot,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			scanRes, scanTrace := marshalRun(t, tc.cfg)
			if len(scanTrace) == 0 {
				t.Fatal("trace output is empty; comparison is vacuous")
			}
			kcfg := tc.cfg
			kcfg.Engine = simnet.EngineKinetic
			// Every-tick checking keeps the kinetic-graph-equal
			// differential hot throughout the run.
			kcfg.CheckLevel = "every-tick"
			kinRes, kinTrace := marshalRun(t, kcfg)
			// CheckLevel does not influence Results or trace, so the
			// comparison against the unchecked scan run stays valid.
			if !bytes.Equal(scanRes, kinRes) {
				t.Errorf("kinetic results differ from scan:\nscan:    %s\nkinetic: %s",
					scanRes, kinRes)
			}
			if !bytes.Equal(scanTrace, kinTrace) {
				t.Errorf("kinetic trace differs from scan")
			}
			// The engines must also agree under intra-tick parallelism
			// (the kinetic engine shares the parallel cluster/LM phases).
			pcfg := kcfg
			pcfg.CheckLevel = ""
			pcfg.IntraTickParallelism = 3
			parRes, parTrace := marshalRun(t, pcfg)
			if !bytes.Equal(scanRes, parRes) {
				t.Errorf("kinetic+parallel results differ from scan")
			}
			if !bytes.Equal(scanTrace, parTrace) {
				t.Errorf("kinetic+parallel trace differs from scan")
			}
		})
	}
}

// TestKineticConfigValidation: the engine knob rejects unknown values
// and accepts the two engines by name (empty defaults to scan).
func TestKineticConfigValidation(t *testing.T) {
	cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Engine: "warp"}
	if _, err := simnet.Run(cfg); err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, e := range []string{"", simnet.EngineScan, simnet.EngineKinetic} {
		cfg := simnet.Config{N: 8, Duration: 2, Warmup: -1, Engine: e}
		if _, err := simnet.Run(cfg); err != nil {
			t.Fatalf("engine %q rejected: %v", e, err)
		}
	}
}
