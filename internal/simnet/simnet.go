// Package simnet assembles the full simulation: mobility drives node
// positions, the unit-disk graph is rescanned at a fixed interval, the
// clustered hierarchy is recomputed to its ALCA fixed point, the CHLM
// server table is updated incrementally, and every change is fed to
// the handoff accountant and the event classifiers. One Run produces
// the per-level overhead rates the paper's analysis predicts.
package simnet

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// Mobility model names accepted by Config.
const (
	MobilityWaypoint  = "waypoint"
	MobilityDirection = "direction"
	MobilityStatic    = "static"
	MobilityGroup     = "group" // RPGM (ablation A6)
)

// Hop model names accepted by Config.
const (
	HopEuclidean = "euclid"
	HopBFS       = "bfs"
)

// Config parameterizes one simulation run. Zero fields take the
// defaults documented on each field.
type Config struct {
	N    int    // node count (required)
	Seed uint64 // experiment seed

	RTX    float64 // transmission radius, m (default 100)
	Degree float64 // target mean node degree; fixes density (default 9)
	Mu     float64 // node speed, m/s (default 10)

	// ScanInterval is the link-scan period. Default: enough that a
	// node moves at most RTX/10 per tick, capped at 1 s.
	ScanInterval float64
	Duration     float64 // measured sim time, s (default 300)
	Warmup       float64 // discarded leading sim time, s (default 60)

	Mobility string  // waypoint (default) | direction | static | group
	HopModel string  // euclid (default) | bfs
	Detour   float64 // Euclidean hop detour factor (default 1.3)

	// Group-mobility parameters (Mobility == "group"): nodes per group
	// and the wander radius around the group reference point.
	GroupSize   int     // default 16
	GroupRadius float64 // default 2·RTX

	Elector   cluster.Elector // default MemorylessLCA
	Hash      lm.HashFamily   // default Rendezvous
	MaxLevels int             // hierarchy depth cap (default 24)

	// NaiveNaming disables cluster identity continuity: LM hashing and
	// handoff classification key on raw clusterhead IDs, so every head
	// relabel re-homes its subtree's entries (ablation A4).
	NaiveNaming bool

	// TopArity stops the clustering recursion once a level has at most
	// this many clusters and closes the hierarchy with one stable
	// forced top cluster (the paper's "desired number of cluster
	// levels"). 0 selects the default (12); -1 disables the cap and
	// recurses to a single elected top (ablation A5).
	TopArity int

	// ChurnRate enables node death/birth — the case the paper's §1
	// explicitly assumes away ("extremely rare ... not evaluated") and
	// experiment E18 evaluates. Each alive node dies with this rate
	// (per second); dead nodes rejoin after an exponential downtime of
	// mean MeanDowntime seconds, re-registering from scratch.
	ChurnRate    float64
	MeanDowntime float64 // default 30 s

	TrackStates  bool // accumulate ALCA state statistics (E3, E11)
	TrackClasses bool // classify reorg triggers i–vii (E10)
	// SampleHops measures intra-cluster hop counts h_k by BFS every
	// SampleHops ticks (0 = off). Expensive; used by E5.
	SampleHops int
	// HopPairs bounds the sampled pairs per cluster level per sample.
	HopPairs int
	// Paranoid validates every hierarchy snapshot (tests).
	Paranoid bool

	// Observer, when non-nil, is invoked after every scan tick with
	// the live state. Used by examples and the trace tool.
	Observer func(ObsEvent)
}

// ObsEvent is the per-tick observer payload.
type ObsEvent struct {
	Time      float64
	Hierarchy *cluster.Hierarchy
	Diff      *cluster.Diff
	Transfers []lm.Transfer
	Positions []geom.Vec
}

// fdef returns v, or def when v is exactly the zero "unset" sentinel
// of an optional Config field.
func fdef(v, def float64) float64 {
	//lint:ignore floateq zero is the documented unset-field sentinel
	if v == 0 {
		return def
	}
	return v
}

func (c Config) withDefaults() Config {
	c.RTX = fdef(c.RTX, 100)
	c.Degree = fdef(c.Degree, 9)
	c.Mu = fdef(c.Mu, 10)
	c.ScanInterval = fdef(c.ScanInterval, math.Min(1, 0.1*c.RTX/c.Mu))
	c.Duration = fdef(c.Duration, 300)
	c.Warmup = fdef(c.Warmup, 60)
	if c.Mobility == "" {
		c.Mobility = MobilityWaypoint
	}
	if c.HopModel == "" {
		c.HopModel = HopEuclidean
	}
	c.Detour = fdef(c.Detour, 1.3)
	if c.Hash == nil {
		c.Hash = lm.Rendezvous{}
	}
	if c.HopPairs == 0 {
		c.HopPairs = 64
	}
	if c.TopArity == 0 {
		c.TopArity = 12
	}
	c.MeanDowntime = fdef(c.MeanDowntime, 30)
	return c
}

// Region returns the deployment disc this configuration implies (after
// defaults): sized so the target mean degree holds at the given N.
func (c Config) Region() geom.Disc {
	c = c.withDefaults()
	density := c.Degree / (math.Pi * c.RTX * c.RTX)
	return geom.DiscForDensity(c.N, density)
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("simnet: N = %d too small", cfg.N)
	}

	root := rng.NewRoot(cfg.Seed)
	density := cfg.Degree / (math.Pi * cfg.RTX * cfg.RTX)
	region := geom.DiscForDensity(cfg.N, density)

	var model mobility.Model
	switch cfg.Mobility {
	case MobilityWaypoint:
		model = mobility.NewWaypoint(region, cfg.Mu, root.Stream("mobility"))
	case MobilityDirection:
		model = mobility.NewRandomDirection(region, cfg.Mu, 30, root.Stream("mobility"))
	case MobilityStatic:
		model = mobility.NewStationary(region, root.Stream("mobility"))
	case MobilityGroup:
		size := cfg.GroupSize
		if size <= 0 {
			size = 16
		}
		radius := cfg.GroupRadius
		if radius <= 0 {
			radius = 2 * cfg.RTX
		}
		model = mobility.NewGroupMobility(region, cfg.Mu, radius, size, root.Stream("mobility"))
	default:
		return nil, fmt.Errorf("simnet: unknown mobility model %q", cfg.Mobility)
	}

	pos := model.Init(cfg.N)
	grid := spatial.NewGridForDisc(region, cfg.RTX, cfg.N)
	for i, p := range pos {
		grid.Insert(i, p)
	}
	nodes := make([]int, cfg.N)
	for i := range nodes {
		nodes[i] = i
	}

	clusterCfg := cluster.Config{MaxLevels: cfg.MaxLevels, Elector: cfg.Elector}
	if cfg.TopArity > 0 {
		clusterCfg.ForceTopAt = cfg.TopArity
	}
	if _, stateful := cfg.Elector.(cluster.StatefulElector); stateful {
		// Grace-period electors transiently detach members from heads;
		// disable the reach invariant.
		clusterCfg.Reach = -1
	}
	selector := lm.NewSelector(cfg.Hash)

	// The paper's analysis assumes a connected network (§1.2). The
	// clustered hierarchy and LM therefore cover the giant component;
	// stragglers outside it re-register when they rejoin (counted as
	// registration overhead, not handoff).
	graph := topology.BuildUnitDisk(cfg.N, pos, cfg.RTX, grid)
	tracker := cluster.NewIdentityTracker()
	tracker.Passthrough = cfg.NaiveNaming
	hier, idents := cluster.BuildWithIdentities(
		graph, topology.GiantComponent(graph, nodes), clusterCfg, nil, nil, tracker, 0)
	table := selector.BuildTable(hier, idents)

	var hop topology.HopModel
	var bfsHop *topology.BFSHops
	switch cfg.HopModel {
	case HopEuclidean:
		hop = topology.NewEuclideanHops(pos, cfg.RTX, cfg.Detour)
	case HopBFS:
		fallback := int(2*region.R/cfg.RTX) + 2
		bfsHop = topology.NewBFSHops(graph, fallback)
		hop = bfsHop
	default:
		return nil, fmt.Errorf("simnet: unknown hop model %q", cfg.HopModel)
	}
	accountant := lm.NewAccountant(hop)

	st := newStateRun(cfg, region)
	st.observe(hier, graph, 0)

	// Churn state (E18): alive flags and pending revivals.
	alive := make([]bool, cfg.N)
	for i := range alive {
		alive[i] = true
	}
	reviveAt := make([]float64, cfg.N)
	churnSrc := root.Stream("churn")
	aliveNodes := make([]int, 0, cfg.N)

	engine := sim.NewEngine()
	horizon := cfg.Warmup + cfg.Duration
	tick := 0
	engine.Ticker(cfg.ScanInterval, cfg.ScanInterval, "scan", func(e *sim.Engine) {
		now := e.Now()
		tick++
		model.AdvanceTo(now, pos)
		if cfg.ChurnRate > 0 {
			pDeath := cfg.ChurnRate * cfg.ScanInterval
			for i := range alive {
				if alive[i] {
					if churnSrc.Float64() < pDeath {
						alive[i] = false
						reviveAt[i] = now + churnSrc.Exp(1/cfg.MeanDowntime)
						grid.Remove(i)
						if now > cfg.Warmup {
							st.deaths++
						}
					}
				} else if now >= reviveAt[i] {
					alive[i] = true
				}
			}
		}
		aliveNodes = aliveNodes[:0]
		for i, p := range pos {
			if alive[i] {
				grid.Update(i, p)
				aliveNodes = append(aliveNodes, i)
			}
		}
		newGraph := topology.BuildUnitDisk(cfg.N, pos, cfg.RTX, grid)
		if bfsHop != nil {
			bfsHop.Rebind(newGraph)
		}
		newHier, newIdents := cluster.BuildWithIdentities(
			newGraph, topology.GiantComponent(newGraph, aliveNodes), clusterCfg, hier, idents, tracker, now)
		if cfg.Paranoid {
			if err := newHier.Validate(); err != nil {
				panic(fmt.Sprintf("simnet: t=%.2f: %v", now, err))
			}
		}
		diff := cluster.ComputeDiff(hier, newHier)
		newTable := selector.UpdateTable(table, hier, idents, newHier, newIdents)

		measuring := now > cfg.Warmup
		var transfers []lm.Transfer
		if measuring {
			st.measuredTicks++
			st.countLinkEvents(graph, newGraph)
			transfers = accountant.Apply(table, newTable, &st.totals)
			st.observe(newHier, newGraph, tick)
			if cfg.TrackStates {
				st.states.Observe(newHier)
				st.states.ObserveDiff(diff)
			}
			if cfg.TrackClasses {
				st.classes.Merge(lm.ClassifyReorg(hier, newHier, diff))
			}
			st.countClusterLinkEvents(hier, idents, newHier, newIdents, table, newTable)
			if cfg.SampleHops > 0 && tick%cfg.SampleHops == 0 {
				st.sampleHops(newHier, newGraph)
			}
		} else {
			_ = transfers
		}

		if cfg.Observer != nil {
			cfg.Observer(ObsEvent{
				Time: now, Hierarchy: newHier, Diff: diff,
				Transfers: transfers, Positions: pos,
			})
		}

		graph, hier, idents, table = newGraph, newHier, newIdents, newTable
	})
	engine.RunUntil(horizon)

	return st.results(cfg)
}
