// Package simnet assembles the full simulation: mobility drives node
// positions, the unit-disk graph is rescanned at a fixed interval, the
// clustered hierarchy is recomputed to its ALCA fixed point, the CHLM
// server table is updated incrementally, and every change is fed to
// the handoff accountant and the event classifiers. One Run produces
// the per-level overhead rates the paper's analysis predicts.
package simnet

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/invariant"
	"repro/internal/kinetic"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// Mobility model names accepted by Config (see registry.go for the
// constructors and MobilityModels for deterministic enumeration).
const (
	MobilityWaypoint    = "waypoint"
	MobilityDirection   = "direction"
	MobilityStatic      = "static"
	MobilityGroup       = "group"        // RPGM (ablation A6)
	MobilityGaussMarkov = "gauss-markov" // temporally correlated velocity
	MobilityManhattan   = "manhattan"    // street-grid constrained
	MobilityHotspot     = "hotspot"      // attraction points with dwell
)

// Link model names accepted by Config.Link (see registry.go and
// topology.LinkModel).
const (
	// LinkUnitDisk is the paper's link model: connected iff within
	// RTX. Kinetic-compatible.
	LinkUnitDisk = "unitdisk"
	// LinkLogShadow is log-distance path loss with per-pair lognormal
	// shadowing and RSSI hysteresis (topology.LogShadow). Keeps
	// per-pair state, so it is scan-only: Config validation rejects it
	// under the kinetic engine.
	LinkLogShadow = "logshadow"
)

// Hop model names accepted by Config.
const (
	HopEuclidean = "euclid"
	HopBFS       = "bfs"
)

// Engine names accepted by Config.Engine.
const (
	// EngineScan rebuilds the unit-disk graph with a full grid scan
	// over all N nodes every tick (the original engine).
	EngineScan = "scan"
	// EngineKinetic maintains the edge set event-driven: link
	// make/break instants are scheduled in closed form from each
	// node's current linear motion segment, so per-tick cost is
	// proportional to the topology event rate instead of N. Results
	// and traces are byte-identical to EngineScan (enforced by
	// TestKineticMatchesScan and the prop-corpus differential).
	EngineKinetic = "kinetic"
)

// Maintainer names accepted by Config.Maintainer.
const (
	// MaintainerOracle recomputes the full ALCA fixed point from
	// scratch every tick (the original maintenance strategy).
	MaintainerOracle = "oracle"
	// MaintainerIncremental advances the previous hierarchy snapshot
	// by the tick's link-event delta: only the closed neighborhoods of
	// dirty nodes re-elect, and changes propagate upward level by level
	// only while the elected-head set keeps changing. Per-tick cost is
	// proportional to the link-event rate instead of N. Hierarchies,
	// identities, tables, Results and traces are byte-identical to the
	// oracle (enforced by the incremental-hierarchy-equal invariant,
	// TestIncrementalMatchesOracle, and the prop-corpus differential).
	MaintainerIncremental = "incremental"
)

// Fault names accepted by Config.Fault (fault injection for the
// invariant harness; see the Fault field).
const (
	// FaultHandoffMisroute periodically rewrites one live LM table
	// entry to point at the wrong (but live) server — a handoff that
	// failed to rehome an entry. Only the table-rebuild-equal invariant
	// can see it, which is exactly what it exists to demonstrate.
	FaultHandoffMisroute = "handoff-misroute"
)

// faultPeriod is the tick period of fault injection: prime and < 200
// so a shrunk reproduction always fits the ≤ 200-tick budget.
const faultPeriod = 37

// Config parameterizes one simulation run. Zero fields take the
// defaults documented on each field.
//
// Optional float fields share one sentinel convention: 0 (the Go zero
// value) means "unset, use the default", and a negative value means
// "exactly zero". The explicit-zero form matters for Warmup (run with
// no warmup: Warmup = -1); for fields that must be positive it yields
// a validation error from Run instead of a silently substituted
// default.
type Config struct {
	N    int    // node count (required)
	Seed uint64 // experiment seed

	RTX    float64 // transmission radius, m (default 100; 0 = default, < 0 rejected)
	Degree float64 // target mean node degree; fixes density (default 9; 0 = default, < 0 rejected)
	Mu     float64 // node speed, m/s (default 10; 0 = default, < 0 = exactly 0, static models only)

	// ScanInterval is the link-scan period. Default (0): enough that a
	// node moves at most RTX/10 per tick, capped at 1 s. Negative is
	// rejected.
	ScanInterval float64
	Duration     float64 // measured sim time, s (default 300; 0 = default, < 0 rejected)
	Warmup       float64 // discarded leading sim time, s (default 60; 0 = default, < 0 = no warmup)

	// Mobility selects the mobility model by registry name (default
	// "waypoint"; see MobilityModels for the full zoo).
	Mobility string
	// Link selects the level-0 link model by registry name (default
	// "unitdisk"; see LinkModels). "logshadow" is scan-only — the
	// kinetic engine is rejected with it (see the kinetic-compatibility
	// contract on topology.LinkModel).
	Link string
	// Log-shadowing parameters (Link == "logshadow"): path-loss
	// exponent η (default 3; 0 = default, <= 0 rejected), shadowing
	// std dev σ in dB (default 4; 0 = default, < 0 = exactly 0), and
	// the hysteresis margin M in dB split around the nominal threshold
	// (default 3; 0 = default, < 0 = exactly 0 — no hysteresis).
	PathLossExp float64
	ShadowSigma float64
	LinkMargin  float64
	HopModel    string // euclid (default) | bfs
	Engine      string // scan (default) | kinetic — link-maintenance engine
	// Maintainer selects the hierarchy-maintenance strategy: "oracle"
	// (default) rebuilds the ALCA fixed point from scratch every tick,
	// "incremental" advances the previous snapshot by the tick's
	// link-event delta (churn-proportional cost, byte-identical
	// output).
	Maintainer string
	Detour     float64 // Euclidean hop detour factor (default 1.3; 0 = default, < 0 rejected)

	// Group-mobility parameters (Mobility == "group"): nodes per group
	// and the wander radius around the group reference point.
	GroupSize   int     // default 16
	GroupRadius float64 // default 2·RTX

	Elector   cluster.Elector // default MemorylessLCA
	Hash      lm.HashFamily   // default Rendezvous
	MaxLevels int             // hierarchy depth cap (default 24)

	// NaiveNaming disables cluster identity continuity: LM hashing and
	// handoff classification key on raw clusterhead IDs, so every head
	// relabel re-homes its subtree's entries (ablation A4).
	NaiveNaming bool

	// TopArity stops the clustering recursion once a level has at most
	// this many clusters and closes the hierarchy with one stable
	// forced top cluster (the paper's "desired number of cluster
	// levels"). 0 selects the default (12); -1 disables the cap and
	// recurses to a single elected top (ablation A5).
	TopArity int

	// ChurnRate enables node death/birth — the case the paper's §1
	// explicitly assumes away ("extremely rare ... not evaluated") and
	// experiment E18 evaluates. Each alive node dies with this rate
	// (per second); dead nodes rejoin after an exponential downtime of
	// mean MeanDowntime seconds, re-registering from scratch.
	ChurnRate    float64
	MeanDowntime float64 // default 30 s (0 = default, < 0 rejected when churn is on)

	TrackStates  bool // accumulate ALCA state statistics (E3, E11)
	TrackClasses bool // classify reorg triggers i–vii (E10)
	// SampleHops measures intra-cluster hop counts h_k by BFS every
	// SampleHops ticks (0 = off). Expensive; used by E5.
	SampleHops int
	// HopPairs bounds the sampled pairs per cluster level per sample.
	HopPairs int
	// Paranoid validates every hierarchy snapshot (tests).
	Paranoid bool

	// IntraTickParallelism sets the worker count for parallelizing the
	// heavy phases inside one scan tick (graph rebuild, LM table
	// update, hop sampling). 0 or 1 means serial (the default);
	// negative is rejected. Results are byte-identical to a serial run
	// for every worker count — see internal/par's determinism contract.
	IntraTickParallelism int

	// Observer, when non-nil, is invoked after every scan tick with
	// the live state. Used by examples and the trace tool.
	Observer func(ObsEvent)

	// CheckLevel selects how often the runtime invariant checker
	// (internal/invariant) audits the tick's snapshots: "" or "off"
	// (default) disables it, "sampled" checks every 16th tick, and
	// "every-tick" checks all of them. Violations carry the offending
	// tick, seed, and a minimal state dump; they are delivered to
	// OnViolation when set and panic otherwise.
	CheckLevel string

	// OnViolation receives invariant violations instead of panicking.
	// Used by the fuzzing harness (internal/invariant/prop) to collect,
	// shrink, and replay failing scenarios.
	OnViolation func(invariant.Violation)

	// Fault injects a deliberate bug into the tick loop (see the Fault*
	// constants) so tests can prove the invariant checker catches it.
	// Empty (default) injects nothing.
	Fault string

	// Metrics, when non-nil, receives run observability: wall-clock
	// phase timers for every stage of the scan tick (obs.PhaseTick and
	// its sub-phases), tick/transfer counters, and a hierarchy-depth
	// gauge. Purely observational — metrics never feed back into
	// simulation state or randomness, so Results and traces are
	// byte-identical with Metrics on or off (enforced by
	// TestMetricsDoNotPerturbResults).
	Metrics *obs.Registry
}

// ObsEvent is the per-tick observer payload.
//
// Lifetime: every field is valid only for the duration of the callback.
// The simulation loop double-buffers its snapshots and recycles their
// storage two ticks later, so an observer that needs data beyond the
// callback must copy it (as trace.Tracer does).
type ObsEvent struct {
	Time      float64
	Hierarchy *cluster.Hierarchy
	Diff      *cluster.Diff
	Transfers []lm.Transfer
	Positions []geom.Vec
}

// fdef resolves an optional float field: 0 (the Go zero value) selects
// def, a negative value selects exactly 0, and any positive value is
// kept. Fields that must stay positive reject the resulting 0 in
// Config.validate.
func fdef(v, def float64) float64 {
	//lint:ignore floateq zero is the documented unset-field sentinel
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func (c Config) withDefaults() Config {
	c.RTX = fdef(c.RTX, 100)
	c.Degree = fdef(c.Degree, 9)
	c.Mu = fdef(c.Mu, 10)
	c.ScanInterval = fdef(c.ScanInterval, math.Min(1, 0.1*c.RTX/c.Mu))
	c.Duration = fdef(c.Duration, 300)
	c.Warmup = fdef(c.Warmup, 60)
	if c.Mobility == "" {
		c.Mobility = MobilityWaypoint
	}
	if c.Link == "" {
		c.Link = LinkUnitDisk
	}
	c.PathLossExp = fdef(c.PathLossExp, 3)
	c.ShadowSigma = fdef(c.ShadowSigma, 4)
	c.LinkMargin = fdef(c.LinkMargin, 3)
	if c.HopModel == "" {
		c.HopModel = HopEuclidean
	}
	if c.Engine == "" {
		c.Engine = EngineScan
	}
	if c.Maintainer == "" {
		c.Maintainer = MaintainerOracle
	}
	c.Detour = fdef(c.Detour, 1.3)
	if c.Hash == nil {
		c.Hash = lm.Rendezvous{}
	}
	if c.HopPairs == 0 {
		c.HopPairs = 64
	}
	if c.TopArity == 0 {
		c.TopArity = 12
	}
	c.MeanDowntime = fdef(c.MeanDowntime, 30)
	return c
}

// validate checks a defaulted config, rejecting explicit zeros (the
// negative sentinel) on fields that must be positive.
func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("simnet: N = %d too small", c.N)
	}
	if c.RTX <= 0 {
		return fmt.Errorf("simnet: RTX must be positive (got %v)", c.RTX)
	}
	if c.Degree <= 0 {
		return fmt.Errorf("simnet: Degree must be positive (got %v)", c.Degree)
	}
	if c.ScanInterval <= 0 {
		return fmt.Errorf("simnet: ScanInterval must be positive (got %v)", c.ScanInterval)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("simnet: Duration must be positive (got %v)", c.Duration)
	}
	if c.Mu <= 0 && c.Mobility != MobilityStatic {
		return fmt.Errorf("simnet: Mu must be positive for mobility %q (got %v)", c.Mobility, c.Mu)
	}
	if c.Detour <= 0 && c.HopModel == HopEuclidean {
		return fmt.Errorf("simnet: Detour must be positive (got %v)", c.Detour)
	}
	if c.ChurnRate > 0 && c.MeanDowntime <= 0 {
		return fmt.Errorf("simnet: MeanDowntime must be positive with churn (got %v)", c.MeanDowntime)
	}
	if c.IntraTickParallelism < 0 {
		return fmt.Errorf("simnet: IntraTickParallelism must be >= 0 (got %d)", c.IntraTickParallelism)
	}
	if _, ok := mobilityRegistry[c.Mobility]; !ok {
		return fmt.Errorf("simnet: unknown mobility model %q (want one of %v)", c.Mobility, mobilityNames)
	}
	link, ok := linkRegistry[c.Link]
	if !ok {
		return fmt.Errorf("simnet: unknown link model %q (want one of %v)", c.Link, linkNames)
	}
	if c.PathLossExp <= 0 {
		return fmt.Errorf("simnet: PathLossExp must be positive (got %v)", c.PathLossExp)
	}
	switch c.Engine {
	case EngineScan, EngineKinetic:
	default:
		return fmt.Errorf("simnet: unknown engine %q (want %s|%s)", c.Engine, EngineScan, EngineKinetic)
	}
	if c.Engine == EngineKinetic && !link.kinetic {
		return fmt.Errorf("simnet: engine %q requires a kinetic-compatible link model (%q keeps per-pair state; use engine %q or link %q)",
			EngineKinetic, c.Link, EngineScan, LinkUnitDisk)
	}
	switch c.Maintainer {
	case MaintainerOracle, MaintainerIncremental:
	default:
		return fmt.Errorf("simnet: unknown maintainer %q (want %s|%s)",
			c.Maintainer, MaintainerOracle, MaintainerIncremental)
	}
	if _, err := invariant.ParseLevel(c.CheckLevel); err != nil {
		return fmt.Errorf("simnet: %v", err)
	}
	switch c.Fault {
	case "", FaultHandoffMisroute:
	default:
		return fmt.Errorf("simnet: unknown fault %q", c.Fault)
	}
	return nil
}

// Region returns the deployment disc this configuration implies (after
// defaults): sized so the target mean degree holds at the given N.
func (c Config) Region() geom.Disc {
	c = c.withDefaults()
	density := c.Degree / (math.Pi * c.RTX * c.RTX)
	return geom.DiscForDensity(c.N, density)
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lp, err := setupRun(cfg)
	if err != nil {
		return nil, err
	}
	defer lp.close()

	engine := sim.NewEngine()
	horizon := cfg.Warmup + cfg.Duration
	engine.Ticker(cfg.ScanInterval, cfg.ScanInterval, "scan", func(e *sim.Engine) {
		lp.step(e.Now())
	})
	engine.RunUntil(horizon)

	return lp.st.results(cfg)
}

// setupRun builds the initial snapshot and the tick loop for an
// already-defaulted, validated config. Split from Run so tests can
// drive single steps (TestSteadyStateTickAllocs).
func setupRun(cfg Config) (*looper, error) {
	root := rng.NewRoot(cfg.Seed)
	density := cfg.Degree / (math.Pi * cfg.RTX * cfg.RTX)
	region := geom.DiscForDensity(cfg.N, density)

	// Both registries were validated before setupRun.
	model := mobilityRegistry[cfg.Mobility](cfg, region, root.Stream("mobility"))
	link := linkRegistry[cfg.Link].build(cfg, root)

	pos := model.Init(cfg.N)
	grid := spatial.NewGridForDisc(region, cfg.RTX, cfg.N)
	for i, p := range pos {
		grid.Insert(i, p)
	}
	nodes := make([]int, cfg.N)
	for i := range nodes {
		nodes[i] = i
	}

	clusterCfg := cluster.Config{MaxLevels: cfg.MaxLevels, Elector: cfg.Elector}
	if cfg.TopArity > 0 {
		clusterCfg.ForceTopAt = cfg.TopArity
	}
	if _, stateful := cfg.Elector.(cluster.StatefulElector); stateful {
		// Grace-period electors transiently detach members from heads;
		// disable the reach invariant.
		clusterCfg.Reach = -1
	}
	selector := lm.NewSelector(cfg.Hash)

	// The paper's analysis assumes a connected network (§1.2). The
	// clustered hierarchy and LM therefore cover the giant component;
	// stragglers outside it re-register when they rejoin (counted as
	// registration overhead, not handoff). The setup build is serial
	// (nil pool) — serial and sharded builds are byte-identical, so the
	// choice is unobservable.
	graph := link.BuildInto(nil, cfg.N, pos, grid, nil, nil)
	tracker := cluster.NewIdentityTracker()
	tracker.Passthrough = cfg.NaiveNaming
	var mnt cluster.Maintainer
	switch cfg.Maintainer {
	case MaintainerIncremental:
		mnt = cluster.NewIncrementalMaintainer(clusterCfg, tracker)
	default:
		mnt = cluster.NewOracleMaintainer(clusterCfg, tracker)
	}
	hier, idents := mnt.Maintain(&cluster.MaintainInput{
		G0: graph, Nodes: topology.GiantComponent(graph, nodes), Now: 0,
	})
	table := selector.BuildTable(hier, idents)

	var hop topology.HopModel
	var bfsHop *topology.BFSHops
	switch cfg.HopModel {
	case HopEuclidean:
		hop = topology.NewEuclideanHops(pos, cfg.RTX, cfg.Detour)
	case HopBFS:
		fallback := int(2*region.R/cfg.RTX) + 2
		bfsHop = topology.NewBFSHops(graph, fallback)
		hop = bfsHop
	default:
		return nil, fmt.Errorf("simnet: unknown hop model %q", cfg.HopModel)
	}
	accountant := lm.NewAccountant(hop)

	// One worker pool serves every parallel phase of the run; it is
	// released by looper.close. 0 or 1 workers keep every phase on the
	// serial code path.
	var pool *par.Pool
	if cfg.IntraTickParallelism > 1 {
		pool = par.NewPool(cfg.IntraTickParallelism)
	}

	st := newStateRun(cfg, region)
	st.bindPool(pool)
	st.observe(hier, graph, 0)

	// Invariant checker (Config.CheckLevel). The level was validated
	// before setupRun, so the parse cannot fail here.
	checkLevel, _ := invariant.ParseLevel(cfg.CheckLevel)
	checker := invariant.New(checkLevel, cfg.Metrics, cfg.OnViolation)

	alive := make([]bool, cfg.N)
	for i := range alive {
		alive[i] = true
	}

	// Kinetic engine (Config.Engine): the tracker takes over the grid
	// and maintains the edge set event-driven, seeded from the setup
	// graph. The scan engine leaves kin nil. Validation already
	// rejected non-kinetic link models for this engine; the mobility
	// model's kinetic capability is a property of the constructed value
	// and is checked here.
	var kin *kinetic.Tracker
	if cfg.Engine == EngineKinetic {
		km, ok := model.(mobility.Kinetic)
		if !ok {
			return nil, fmt.Errorf("simnet: engine %q requires a kinetic-capable mobility model (%q is not)",
				cfg.Engine, cfg.Mobility)
		}
		kin = kinetic.New(km, grid, pos, alive, cfg.RTX, cfg.ScanInterval)
		kin.Seed(graph)
	}

	lp := &looper{
		pool:       pool,
		checker:    checker,
		tm:         newPhaseTimers(cfg.Metrics),
		cfg:        cfg,
		clusterCfg: clusterCfg,
		model:      model,
		link:       link,
		grid:       grid,
		kin:        kin,
		region:     region,
		pos:        pos,
		selector:   selector,
		tracker:    tracker,
		accountant: accountant,
		bfsHop:     bfsHop,
		st:         st,
		graph:      graph,
		hier:       hier,
		idents:     idents,
		table:      table,
		mnt:        mnt,
		useEvents:  cfg.Maintainer == MaintainerIncremental,
		alive:      alive,
		reviveAt:   make([]float64, cfg.N),
		churnSrc:   root.Stream("churn"),
		aliveNodes: make([]int, 0, cfg.N),
	}

	// Audit the setup snapshot too (tick 0, no prev/diff): a run must
	// not start from a corrupt structure. Only every-tick mode fires
	// here — Sampled starts at tick 1.
	if checker.ShouldCheck(0) {
		checker.CheckTick(&invariant.Snapshot{
			Tick: 0, Time: 0, Seed: cfg.Seed,
			Next:     &invariant.State{Hier: hier, IDs: idents, Table: table},
			Selector: selector,
		})
	}
	return lp, nil
}
