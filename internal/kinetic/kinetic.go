// Package kinetic is the event-driven link engine: instead of
// rescanning all N nodes every tick, it maintains the unit-disk edge
// set by scheduling the instants at which it could change. Under the
// paper's mobility assumptions (§1.2) node motion is piecewise linear
// (mobility.Kinetic), so the squared distance of any pair is a
// quadratic in time and its crossings of R_TX² have closed-form roots.
//
// The tracker drives a priority queue of two event kinds over the
// spatial grid:
//
//   - node attention: the node's linear segment expired (waypoint
//     arrival, pause expiry, heading change, boundary reflection) or
//     the node crossed a grid cell boundary. The handler updates the
//     node's cell, re-examines every pair within the candidate radius,
//     and reschedules.
//   - pair recheck: the pair's certificate — the conservative root of
//     its distance quadratic against R_TX² ∓ band — says the link
//     state may change. The handler re-evaluates the authoritative
//     predicate and reschedules.
//
// Determinism and scan equivalence: the tracker never draws
// randomness and never advances the mobility model; the simulation
// loop advances the model on the tick grid exactly as the scan engine
// does, and the tracker evaluates the authoritative link predicate
// pos[a].Dist2(pos[b]) <= RTX² only at tick instants, with the same
// float operations as the scan. Certificates and cell crossings are
// used exclusively to decide WHICH pairs to evaluate, never what the
// answer is, so the maintained edge set is bit-equal to a full rescan
// at every tick (enforced by the kinetic-graph-differential invariant
// and the scan-vs-kinetic differential tests). Queue ties break on
// (time, kind, node-id) — see DESIGN.md §11.
package kinetic

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// Stats counts tracker work. The engine's cost is proportional to
// these (event rate), not to N×ticks.
type Stats struct {
	Attention uint64 // node attention events processed
	Rechecks  uint64 // pair recheck events processed
	Exams     uint64 // authoritative pair evaluations
}

// Tracker maintains the unit-disk edge set event-driven. It owns the
// spatial grid handed to New (cells are updated at attention events,
// not every tick) and shares the caller's pos/alive slices.
type Tracker struct {
	model mobility.Kinetic
	grid  *spatial.Grid
	pos   []geom.Vec
	alive []bool
	n     int

	r2       float64 // RTX²: the authoritative link threshold
	band     float64 // conservative margin around r2 for scheduling
	interval float64 // tick interval: the event fire granularity
	rings    int     // candidate scan radius around a node, in cells
	now      float64

	q       eventHeap
	nodeVer []uint32
	pairVer map[topology.EdgeKey]uint32

	edges  map[topology.EdgeKey]struct{}
	sorted []topology.EdgeKey // ascending; edge set as of the last flush
	spare  []topology.EdgeKey // double buffer for the delta merge
	ups    []topology.EdgeKey // links made since the last flush
	downs  []topology.EdgeKey // links broken since the last flush

	// Hoisted ForEachNearbyNode callbacks: allocated once here so the
	// hot handlers close over nothing per call; the pivot node rides
	// through the pivot field.
	examineFn func(j int)
	killFn    func(j int)
	pivot     int

	Stats Stats
}

// New builds a tracker over the caller's grid, positions and liveness
// flags. rtx is the link radius (the grid's cell side must be >= rtx
// for 1-ring adjacency, as the simulator's grid guarantees) and
// interval is the tick period at which Advance will be called.
//
// The candidate radius is 1 ring (true adjacency of an in-range pair)
// plus twice the worst-case cell staleness: tracked cells are updated
// only when an attention event fires at a tick, so a node's tracked
// cell can lag its true cell by the distance traveled in one tick.
//
// The staleness term is derived from model.MaxSpeed() sampled ONCE,
// here, so the contract on mobility.Kinetic is that MaxSpeed bounds
// |V| over every segment the model will ever produce — not merely the
// current one. Models with stochastic speed (Gauss–Markov) must
// hard-clamp their speed state to keep that promise (see
// mobility.GaussMarkov.Cap and TestGaussMarkovSpeedClamped); a model
// whose speed support is unbounded would make this ring count
// under-scan and silently miss link events.
func New(model mobility.Kinetic, grid *spatial.Grid, pos []geom.Vec, alive []bool, rtx, interval float64) *Tracker {
	if rtx <= 0 || interval <= 0 {
		panic("kinetic: rtx and interval must be positive")
	}
	stale := int(math.Ceil(model.MaxSpeed() * interval / grid.CellSide()))
	tr := &Tracker{
		model:    model,
		grid:     grid,
		pos:      pos,
		alive:    alive,
		n:        len(pos),
		r2:       rtx * rtx,
		band:     rtx * rtx * 1e-9,
		interval: interval,
		rings:    1 + 2*stale,
		nodeVer:  make([]uint32, len(pos)),
		pairVer:  make(map[topology.EdgeKey]uint32),
		edges:    make(map[topology.EdgeKey]struct{}),
	}
	tr.examineFn = func(j int) { tr.examinePair(tr.pivot, j) }
	tr.killFn = func(j int) {
		k := topology.MakeEdgeKey(tr.pivot, j)
		if _, ok := tr.edges[k]; ok {
			delete(tr.edges, k)
			tr.downs = append(tr.downs, k)
			delete(tr.pairVer, k)
		}
	}
	return tr
}

// Rings reports the candidate scan radius in cells (diagnostics).
func (tr *Tracker) Rings() int { return tr.rings }

// Seed installs the initial edge set — the setup graph the simulator
// built with a full scan over the same grid — and schedules the
// initial events: one attention per alive node plus a certificate for
// every nearby pair.
func (tr *Tracker) Seed(g *topology.Graph) {
	tr.sorted = g.AppendEdges(tr.sorted[:0])
	for _, k := range tr.sorted {
		tr.edges[k] = struct{}{}
	}
	for i := 0; i < tr.n; i++ {
		if !tr.alive[i] {
			continue
		}
		tr.scheduleAttention(i)
		tr.grid.ForEachNearbyNode(i, tr.rings, func(j int) {
			if j > i && tr.alive[j] {
				k := topology.MakeEdgeKey(i, j)
				_, linked := tr.edges[k]
				tr.schedulePair(k, i, j, linked)
			}
		})
	}
}

// BeginTick anchors the tracker at tick time t. It must be called
// after the mobility model has advanced to t and before any Kill,
// Revive, or Advance call for that tick.
func (tr *Tracker) BeginTick(t float64) { tr.now = t }

// Kill removes node i (churn death): its incident links break at this
// tick and its pending events become stale. All linked partners lie
// within the candidate radius of i's tracked cell, so a single
// neighborhood sweep finds every incident edge.
//
//manet:hotpath
func (tr *Tracker) Kill(i int) {
	tr.nodeVer[i]++
	tr.pivot = i
	tr.grid.ForEachNearbyNode(i, tr.rings, tr.killFn)
	tr.grid.Remove(i)
}

// Revive re-inserts node i at its current position (churn rejoin),
// evaluates its neighborhood authoritatively — the rejoin may create
// links this very tick — and schedules its attention.
//
//manet:hotpath
func (tr *Tracker) Revive(i int) {
	tr.grid.Insert(i, tr.pos[i])
	tr.pivot = i
	tr.grid.ForEachNearbyNode(i, tr.rings, tr.examineFn)
	tr.scheduleAttention(i)
}

// Advance drains every event due at or before tick time t. The caller
// must have advanced the mobility model to t first: authoritative
// link predicates are evaluated against the shared pos slice,
// byte-identically to the scan engine.
//
//manet:hotpath
func (tr *Tracker) Advance(t float64) {
	tr.now = t
	for tr.q.Len() > 0 && tr.q.top().t <= t {
		e := tr.q.pop()
		switch e.kind {
		case kindAttention:
			i := int(e.a)
			if e.ver != tr.nodeVer[i] || !tr.alive[i] {
				continue
			}
			tr.Stats.Attention++
			tr.grid.Update(i, tr.pos[i])
			tr.pivot = i
			tr.grid.ForEachNearbyNode(i, tr.rings, tr.examineFn)
			tr.scheduleAttention(i)
		case kindRecheck:
			k := topology.EdgeKey(uint64(uint32(e.a))<<32 | uint64(uint32(e.b)))
			if e.ver != tr.pairVer[k] {
				continue
			}
			a, b := k.Nodes()
			if !tr.alive[a] || !tr.alive[b] {
				// Kill invalidates linked pairs only; an unlinked pair's
				// certificate can outlive an endpoint. Drop it here.
				delete(tr.pairVer, k)
				continue
			}
			tr.Stats.Rechecks++
			tr.examinePair(a, b)
		}
	}
}

// examinePair evaluates the authoritative link predicate for (a, b)
// at the current tick — the same float comparison the scan engine
// performs — applies any state change to the edge set, and schedules
// the pair's next possible change.
//
//manet:hotpath
func (tr *Tracker) examinePair(a, b int) {
	tr.Stats.Exams++
	k := topology.MakeEdgeKey(a, b)
	linked := tr.pos[a].Dist2(tr.pos[b]) <= tr.r2
	_, cur := tr.edges[k]
	if linked != cur {
		if linked {
			tr.edges[k] = struct{}{}
			tr.ups = append(tr.ups, k)
		} else {
			delete(tr.edges, k)
			tr.downs = append(tr.downs, k)
		}
	}
	tr.schedulePair(k, a, b, linked)
}

// scheduleAttention queues node i's next attention: the earlier of
// its segment expiry and its next cell crossing. Stationary nodes
// (both at infinity) schedule nothing.
//
//manet:hotpath
func (tr *Tracker) scheduleAttention(i int) {
	tr.nodeVer[i]++
	seg := tr.model.Segment(i)
	next := seg.T1
	if x := tr.grid.NextCrossing(tr.pos[i], seg.V, tr.now); x < next {
		next = x
	}
	if math.IsInf(next, 1) {
		return
	}
	if next <= tr.now {
		// Numerically on a cell boundary: make strict progress by
		// retrying at the next tick (the half-interval offset fires
		// then regardless of float rounding in the tick grid).
		next = tr.now + 0.5*tr.interval
	}
	tr.q.push(event{t: next, kind: kindAttention, a: int32(i), b: -1, ver: tr.nodeVer[i]})
}

// schedulePair installs the pair's certificate: a recheck at the
// earliest future instant its link state could differ from `linked`,
// per the distance quadratic against r² ∓ band. No event is scheduled
// beyond the pair's segment-validity horizon — the segment owner's
// attention event re-examines the neighborhood there.
//
//manet:hotpath
func (tr *Tracker) schedulePair(k topology.EdgeKey, a, b int, linked bool) {
	sa := tr.model.Segment(a)
	sb := tr.model.Segment(b)
	hi := sa.T1
	if sb.T1 < hi {
		hi = sb.T1
	}
	x := tr.nextChange(sa, sb, linked)
	if x > hi || math.IsInf(x, 1) {
		// No possible change before the horizon: drop the version so
		// any queued recheck goes stale and the map does not grow. The
		// read-before-delete keeps the common far-pair path (no active
		// certificate) to a single map probe.
		if _, ok := tr.pairVer[k]; ok {
			delete(tr.pairVer, k)
		}
		return
	}
	ver := tr.pairVer[k] + 1
	tr.pairVer[k] = ver
	tr.q.push(event{t: x, kind: kindRecheck, a: int32(k >> 32), b: int32(uint32(k)), ver: ver})
}

// nextChange solves the pair's distance quadratic d²(τ) = |Δp+Δv·τ|²
// for the earliest instant after now at which the link state could
// differ from `linked`. The test is conservative: a linked pair is
// safe while d² stays below r²−band, an unlinked pair while it stays
// above r²+band; inside the uncertainty band the pair is rechecked
// every tick. Returns +Inf when no change is possible.
//
//manet:hotpath
func (tr *Tracker) nextChange(sa, sb mobility.Segment, linked bool) float64 {
	dp := sb.At(tr.now).Sub(sa.At(tr.now))
	dv := sb.V.Sub(sa.V)
	A := dv.Len2()
	B := 2 * dp.Dot(dv)
	C := dp.Len2()
	// nextTick fires strictly before the next tick instant, so the
	// recheck runs at the very next Advance regardless of rounding in
	// the accumulated tick grid.
	nextTick := tr.now + 0.5*tr.interval

	if linked {
		thr := tr.r2 - tr.band
		//lint:ignore floateq exact-zero guard before division
		if A == 0 {
			if C <= thr {
				return math.Inf(1) // parallel motion, safely inside
			}
			return nextTick // in the band with no relative motion
		}
		disc := B*B - 4*A*(C-thr)
		if disc < 0 {
			return nextTick // never safely inside: stay on tick cadence
		}
		sq := math.Sqrt(disc)
		t1 := (-B - sq) / (2 * A)
		t2 := (-B + sq) / (2 * A)
		if t1 > 0 || t2 <= 0 {
			// Not currently in the safe interval [t1, t2].
			return nextTick
		}
		return tr.now + t2 // safely inside until t2
	}

	thr := tr.r2 + tr.band
	//lint:ignore floateq exact-zero guard before division
	if A == 0 {
		if C > thr {
			return math.Inf(1) // parallel motion, safely outside
		}
		return nextTick
	}
	disc := B*B - 4*A*(C-thr)
	if disc < 0 {
		return math.Inf(1) // closest approach never enters the band
	}
	sq := math.Sqrt(disc)
	u1 := (-B - sq) / (2 * A)
	u2 := (-B + sq) / (2 * A)
	if u2 <= 0 {
		return math.Inf(1) // approach lies in the past
	}
	if u1 <= 0 {
		return nextTick // already inside the approach band
	}
	return tr.now + u1 // first entry into the band
}

// AppendEvents appends the tick's pending link deltas to dst as
// LinkEvents — downs first, then ups, each ascending by edge key, the
// same convention as topology.DiffScratch.Diff — and returns the
// extended slice. Call it after Advance and before GraphInto (which
// consumes and clears the deltas). The ups/downs lists are exact net
// deltas for the tick: examinePair flips each edge at most once per
// examination against its previous state, so an edge appears in at
// most one of the two lists.
//
//manet:hotpath
func (tr *Tracker) AppendEvents(dst []topology.LinkEvent) []topology.LinkEvent {
	slices.Sort(tr.downs)
	slices.Sort(tr.ups)
	for _, k := range tr.downs {
		dst = append(dst, topology.LinkEvent{Edge: k, Up: false})
	}
	for _, k := range tr.ups {
		dst = append(dst, topology.LinkEvent{Edge: k, Up: true})
	}
	return dst
}

// GraphInto merges the tick's link deltas into the sorted edge list
// and materializes the graph for the downstream incremental pipeline
// (diff → cluster maintain → LM update). Adjacency fills in ascending
// key order — deterministic, and equivalent to the scan builder's
// emission order for every order-free consumer (the differential
// tests enforce that no consumer is order-sensitive).
//
//manet:hotpath
func (tr *Tracker) GraphInto(g *topology.Graph) *topology.Graph {
	if len(tr.ups) > 0 || len(tr.downs) > 0 {
		slices.Sort(tr.ups)
		slices.Sort(tr.downs)
		merged := tr.spare[:0]
		si, ui, di := 0, 0, 0
		for si < len(tr.sorted) {
			s := tr.sorted[si]
			if di < len(tr.downs) && tr.downs[di] == s {
				si++
				di++
				continue
			}
			for ui < len(tr.ups) && tr.ups[ui] < s {
				merged = append(merged, tr.ups[ui])
				ui++
			}
			merged = append(merged, s)
			si++
		}
		merged = append(merged, tr.ups[ui:]...)
		if di != len(tr.downs) {
			panic(fmt.Sprintf("kinetic: %d link-down keys missing from the edge list", len(tr.downs)-di))
		}
		tr.spare = tr.sorted
		tr.sorted = merged
		tr.ups = tr.ups[:0]
		tr.downs = tr.downs[:0]
	}
	return topology.BuildFromSortedEdgesInto(g, tr.n, tr.sorted)
}

// EdgeCount reports the current edge set size (diagnostics).
func (tr *Tracker) EdgeCount() int { return len(tr.edges) }
