package kinetic

// eventKind orders same-instant events: node attention (cell update +
// neighborhood re-examination) runs before pair rechecks so a recheck
// popped at the same instant sees fresh cells. The ordering is part of
// the determinism story (DESIGN.md §11): the queue is a strict weak
// order over (time, kind, a, b), so equal-time events pop in a
// reproducible order regardless of insertion history.
type eventKind uint8

const (
	// kindAttention fires when node a's linear segment expires or when
	// it crosses a grid cell boundary: update its cell, re-examine its
	// neighborhood, reschedule.
	kindAttention eventKind = iota
	// kindRecheck fires when pair (a, b)'s certificate says the link
	// state may change: re-evaluate the authoritative predicate.
	kindRecheck
)

// event is one scheduled occurrence. Events are never removed from the
// queue on invalidation; instead ver is compared against the owning
// node's or pair's current version at pop time and stale events are
// dropped (lazy deletion).
type event struct {
	t    float64
	kind eventKind
	a, b int32 // attention: a = node, b = -1; recheck: pair a < b
	ver  uint32
}

func (e event) less(o event) bool {
	//lint:ignore floateq exact comparison is the tie-break boundary, not an equality test
	if e.t != o.t {
		return e.t < o.t
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.a != o.a {
		return e.a < o.a
	}
	return e.b < o.b
}

// eventHeap is a plain binary min-heap over events. It is hand-rolled
// (rather than container/heap) to avoid interface boxing on the hot
// event path.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) top() event { return h.items[0] }

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	out := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].less(h.items[smallest]) {
			smallest = l
		}
		if r < last && h.items[r].less(h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return out
}
