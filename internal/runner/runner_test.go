package runner

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/simnet"
)

func tinyScale() Scale {
	return Scale{Ns: []int{48, 80}, Seeds: 1, Duration: 20, Warmup: 5, BigN: 64}
}

func TestSweepDeterministicOrder(t *testing.T) {
	spec := SweepSpec{
		Ns: []int{40, 60}, Seeds: 2,
		Base:        simnet.Config{Duration: 15, Warmup: 5},
		Parallelism: 2,
	}
	a := Sweep(spec)
	b := Sweep(spec)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("cell counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].N != b[i].N || a[i].Seed != b[i].Seed {
			t.Fatal("sweep order not deterministic")
		}
		if a[i].Err != nil {
			t.Fatal(a[i].Err)
		}
		if a[i].R.PhiRate != b[i].R.PhiRate {
			t.Fatal("sweep results not deterministic")
		}
	}
	// N-major ordering.
	if a[0].N != 40 || a[1].N != 40 || a[2].N != 60 {
		t.Fatalf("order: %v %v %v %v", a[0].N, a[1].N, a[2].N, a[3].N)
	}
}

// TestSweepDuplicateNsGetDistinctSeeds is the regression test for the
// (N, seed-index) seed derivation: a sweep listing the same N twice
// used to run byte-identical cells, silently halving the sample size.
func TestSweepDuplicateNsGetDistinctSeeds(t *testing.T) {
	spec := SweepSpec{
		Ns: []int{48, 48}, Seeds: 2,
		Base:        simnet.Config{Duration: 15, Warmup: 5},
		Parallelism: 2,
	}
	cells := Sweep(spec)
	if len(cells) != 4 {
		t.Fatalf("cell count %d, want 4", len(cells))
	}
	seen := map[uint64]bool{}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if seen[c.Seed] {
			t.Fatalf("seed %d reused across cells", c.Seed)
		}
		seen[c.Seed] = true
	}
	// The duplicate-N cells must be distinct runs, not replays.
	if cells[0].R.PhiRate == cells[2].R.PhiRate && cells[0].R.F0 == cells[2].R.F0 {
		t.Fatal("duplicate-N cells produced identical results; seeds still collide")
	}
}

func TestAggregate(t *testing.T) {
	spec := SweepSpec{
		Ns: []int{40, 60}, Seeds: 2,
		Base: simnet.Config{Duration: 15, Warmup: 5},
	}
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].N != 40 || rows[1].N != 60 {
		t.Fatal("row order wrong")
	}
	for _, r := range rows {
		if r.Phi.N() != 2 {
			t.Fatalf("N=%d aggregated %d seeds", r.N, r.Phi.N())
		}
		if r.Total.Mean() <= 0 {
			t.Fatalf("N=%d zero total", r.N)
		}
	}
	ns, ys := Series(rows, func(r *AggRow) float64 { return r.Total.Mean() })
	if len(ns) != 2 || len(ys) != 2 || ns[0] != 40 {
		t.Fatal("series extraction wrong")
	}
}

func TestAggregateCollectsErrors(t *testing.T) {
	cells := []CellResult{{N: 10, Seed: 1, Err: errTest}}
	rows, errs := Aggregate(cells)
	if len(rows) != 0 || len(errs) != 1 {
		t.Fatalf("rows=%d errs=%d", len(rows), len(errs))
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestTableWriter(t *testing.T) {
	tw := NewTable("a", "bb", "c")
	tw.Row("1", "2", "3")
	tw.Rowf(42, 3.14159, "x")
	out := tw.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All lines equal width (aligned).
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
	if !strings.Contains(out, "3.1416") {
		t.Fatalf("float formatting missing: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		12.3456: "12.35",
		0.5:     "0.5000",
		1e-5:    "1.00e-05",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "A1", "A2", "A3", "A4", "A5", "A6", "Z1"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Paper == "" || reg[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := Find("E7"); !ok {
		t.Fatal("Find(E7) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("Find(E99) succeeded")
	}
}

// TestExperimentsSmoke runs every experiment at tiny scale and checks
// it produces output without error. This is the end-to-end integration
// test of the entire harness.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	sc := tinyScale()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, sc); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRenderHierarchy(t *testing.T) {
	h, _ := staticHierarchy(25, 1)
	var buf bytes.Buffer
	RenderHierarchy(&buf, h)
	if !strings.Contains(buf.String(), "level 0") || !strings.Contains(buf.String(), "cluster") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

// TestSweepRecoversPanics: a panicking cell must land in its own
// CellResult.Err (with the origin stack) instead of crashing the
// sweep, and Aggregate must route it to errs.
func TestSweepRecoversPanics(t *testing.T) {
	spec := SweepSpec{
		Ns: []int{12}, Seeds: 2, Parallelism: 2,
		Base: simnet.Config{
			Duration: 2, Warmup: -1,
			Observer: func(simnet.ObsEvent) { panic("boom") },
		},
	}
	cells := Sweep(spec)
	if len(cells) != 2 {
		t.Fatalf("cell count %d", len(cells))
	}
	for _, c := range cells {
		if c.Err == nil || c.R != nil {
			t.Fatalf("panicking cell not captured: %+v", c)
		}
		var pe *par.PanicError
		if !errors.As(c.Err, &pe) {
			t.Fatalf("Err is %T, want *par.PanicError", c.Err)
		}
		if !strings.Contains(pe.Error(), "boom") || len(pe.Stack) == 0 {
			t.Fatalf("panic origin lost: %v", pe)
		}
	}
	rows, errs := Aggregate(cells)
	if len(rows) != 0 || len(errs) != 2 {
		t.Fatalf("aggregate: %d rows, %d errs", len(rows), len(errs))
	}
}

// TestSweepCoreBudget: spare cores flow into intra-tick parallelism
// when the sweep is smaller than the budget, and an explicit
// Base.IntraTickParallelism divides the cell-level worker count
// instead of multiplying total concurrency.
func TestSweepCoreBudget(t *testing.T) {
	spec := SweepSpec{
		Ns: []int{10}, Seeds: 1, Parallelism: 8,
		Base: simnet.Config{Duration: 2, Warmup: -1},
	}
	cells := Sweep(spec)
	if cells[0].Err != nil {
		t.Fatal(cells[0].Err)
	}
	if got := cells[0].R.Config.IntraTickParallelism; got != 8 {
		t.Fatalf("auto split: IntraTickParallelism = %d, want 8", got)
	}

	spec.Base.IntraTickParallelism = 2
	spec.Seeds = 3
	cells = Sweep(spec)
	for _, c := range cells {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if got := c.R.Config.IntraTickParallelism; got != 2 {
			t.Fatalf("explicit split: IntraTickParallelism = %d, want 2", got)
		}
	}

	// A sweep with more cells than cores must stay fully serial per cell.
	spec.Base.IntraTickParallelism = 0
	spec.Seeds = 3
	spec.Parallelism = 2
	cells = Sweep(spec)
	for _, c := range cells {
		if got := c.R.Config.IntraTickParallelism; got != 0 {
			t.Fatalf("oversubscribed sweep: IntraTickParallelism = %d, want 0", got)
		}
	}
}

// TestCoreBudgetMatrix pins the invariant cellPar·max(intra,1) ≤ cores
// across the budget matrix, including the former oversubscription bug
// (cores=4, intra=8 used to yield cellPar=1 with intra=8 → 8 workers).
func TestCoreBudgetMatrix(t *testing.T) {
	cases := []struct {
		cores, intra, jobs     int
		wantCellPar, wantIntra int
	}{
		{cores: 4, intra: 8, jobs: 16, wantCellPar: 1, wantIntra: 4}, // the bug: clamp intra to cores
		{cores: 4, intra: 2, jobs: 16, wantCellPar: 2, wantIntra: 2}, // exact split
		{cores: 8, intra: 3, jobs: 16, wantCellPar: 2, wantIntra: 3}, // floor division
		{cores: 1, intra: 8, jobs: 16, wantCellPar: 1, wantIntra: 1}, // single core
		{cores: 4, intra: 1, jobs: 16, wantCellPar: 4, wantIntra: 1}, // explicitly serial cells
		{cores: 4, intra: 0, jobs: 16, wantCellPar: 4, wantIntra: 0}, // enough jobs: serial cells
		{cores: 8, intra: 0, jobs: 2, wantCellPar: 2, wantIntra: 4},  // spare cores → intra
		{cores: 8, intra: 0, jobs: 3, wantCellPar: 3, wantIntra: 2},  // spare floor
		{cores: 4, intra: 0, jobs: 3, wantCellPar: 3, wantIntra: 0},  // spare of 1 is no split
		{cores: 0, intra: 0, jobs: 4, wantCellPar: 1, wantIntra: 0},  // degenerate cores
		{cores: 4, intra: 0, jobs: 0, wantCellPar: 4, wantIntra: 0},  // empty sweep
	}
	for _, c := range cases {
		cellPar, intra := coreBudget(c.cores, c.intra, c.jobs)
		if cellPar != c.wantCellPar || intra != c.wantIntra {
			t.Errorf("coreBudget(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.cores, c.intra, c.jobs, cellPar, intra, c.wantCellPar, c.wantIntra)
		}
		eff := intra
		if eff < 1 {
			eff = 1
		}
		budget := c.cores
		if budget < 1 {
			budget = 1
		}
		if cellPar < 1 || cellPar*eff > budget {
			t.Errorf("coreBudget(%d,%d,%d) = (%d,%d) violates cellPar·max(intra,1) ≤ cores",
				c.cores, c.intra, c.jobs, cellPar, intra)
		}
	}
}

// TestAggregateRaggedLevels: per-seed Results may carry per-level
// slices of different lengths (one seed's hierarchy a level shallower,
// or slices populated by other tooling). Aggregate used to index every
// slice with one shared range and panicked on the shorter ones.
func TestAggregateRaggedLevels(t *testing.T) {
	cells := []CellResult{
		{N: 50, Seed: 1, R: &simnet.Results{
			PhiRate: 1, GammaRate: 2,
			PhiRateByLevel:   []float64{1, 2, 3},
			GammaRateByLevel: []float64{1},        // shorter than Phi
			FMigByLevel:      []float64{0.5, 0.5}, // mid length
			GPrimeByLevel:    nil,                 // absent entirely
			NodesByLevel:     []float64{50, 10, 2},
			EdgesByLevel:     []float64{120},
			HopMeanByLevel:   []float64{0, 2.5}, // level 0 unsampled
		}},
		{N: 50, Seed: 2, R: &simnet.Results{
			PhiRate: 3, GammaRate: 4,
			PhiRateByLevel:   []float64{2},
			GammaRateByLevel: []float64{3, 4, 5, 6}, // longer than seed 1's
			NodesByLevel:     []float64{50, 12},
		}},
	}
	rows, errs := Aggregate(cells)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if got := len(row.PhiByLevel); got != 3 {
		t.Fatalf("PhiByLevel levels = %d, want 3", got)
	}
	if got := row.PhiByLevel[0].N(); got != 2 {
		t.Fatalf("PhiByLevel[0] samples = %d, want 2", got)
	}
	if got := row.PhiByLevel[2].N(); got != 1 {
		t.Fatalf("PhiByLevel[2] samples = %d, want 1 (only seed 1 reached level 2)", got)
	}
	if got := len(row.GammaByLevel); got != 4 {
		t.Fatalf("GammaByLevel levels = %d, want 4", got)
	}
	if got := len(row.GPrimeByLevel); got != 0 {
		t.Fatalf("GPrimeByLevel levels = %d, want 0", got)
	}
	// HopMeanByLevel zeros mean "unsampled" and must not enter the mean.
	if got := len(row.HopByLevel); got != 2 {
		t.Fatalf("HopByLevel levels = %d, want 2", got)
	}
	if got := row.HopByLevel[0].N(); got != 0 {
		t.Fatalf("HopByLevel[0] samples = %d, want 0 (zero = unsampled)", got)
	}
}

// TestSweepProgress: a Progress writer receives one line per cell with
// running done/failed counts, and failed cells are counted as such.
func TestSweepProgress(t *testing.T) {
	var buf bytes.Buffer
	spec := SweepSpec{
		Ns: []int{24, 32}, Seeds: 2,
		Base:     simnet.Config{Duration: 5, Warmup: -1},
		Progress: &buf,
	}
	cells := Sweep(spec)
	for _, c := range cells {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("progress lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "/4 cells done") {
			t.Fatalf("malformed progress line %q", ln)
		}
	}
	if !strings.Contains(lines[3], "4/4 cells done") || strings.Contains(lines[3], "failed") {
		t.Fatalf("final line %q", lines[3])
	}

	// A failing cell (N=0 is rejected by simnet.Run) shows up in the
	// failed count rather than being silently folded into "done".
	buf.Reset()
	spec = SweepSpec{
		Ns: []int{0}, Seeds: 1,
		Base:     simnet.Config{Duration: 5, Warmup: -1},
		Progress: &buf,
	}
	cells = Sweep(spec)
	if cells[0].Err == nil {
		t.Fatal("expected N=0 cell to fail")
	}
	if !strings.Contains(buf.String(), "(1 failed)") || !strings.Contains(buf.String(), "FAILED") {
		t.Fatalf("failure not reported: %q", buf.String())
	}
}
