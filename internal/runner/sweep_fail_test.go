package runner

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// setupPanicElector panics inside cluster construction, which during
// setupRun happens before the looper exists — i.e. before any phase
// span has been opened for the cell.
type setupPanicElector struct{}

func (setupPanicElector) Name() string { return "setup-panic" }
func (setupPanicElector) Elect([]int, []int, *topology.Graph, func(int) int) []int {
	panic("elector exploded during setup")
}

// TestSweepCountsEarlySetupPanic is the satellite-1 regression: a cell
// that panics during setup — before the first phase span is opened —
// must still be recovered into CellResult.Err AND counted in the obs
// sweep cells_failed counter. (Audit outcome: obs.Cell.Done performs
// the counting and is independent of phase spans, so early panics were
// already counted correctly; this test pins that.)
func TestSweepCountsEarlySetupPanic(t *testing.T) {
	reg := obs.NewRegistry()
	spec := SweepSpec{
		Ns: []int{12}, Seeds: 2, Parallelism: 2,
		Base: simnet.Config{
			Duration: 2, Warmup: -1,
			Elector: setupPanicElector{},
			Metrics: reg,
		},
	}
	cells := Sweep(spec)
	if len(cells) != 2 {
		t.Fatalf("cell count %d, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Err == nil {
			t.Fatalf("setup panic not captured: %+v", c)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.SweepCellsFailed]; got != 2 {
		t.Errorf("%s = %d, want 2", obs.SweepCellsFailed, got)
	}
	if got := snap.Counters[obs.SweepCellsOK]; got != 0 {
		t.Errorf("%s = %d, want 0", obs.SweepCellsFailed, got)
	}
}

// TestSweepSurvivesGoexit covers the adjacent gap found by the audit:
// runtime.Goexit (e.g. t.FailNow called from an Observer) unwinds past
// par.Recover and used to kill the sweep worker outright — the cell
// was never counted, its result stayed zero (Err == nil, indistinct
// from success), and with every worker dead the unbuffered job send
// deadlocked Sweep. Each cell now runs on a dedicated goroutine:
// Goexit is accounted as a failed cell with errCellTerminated and the
// sweep finishes.
func TestSweepSurvivesGoexit(t *testing.T) {
	reg := obs.NewRegistry()
	spec := SweepSpec{
		// 4 cells on 1 worker: with the old code the first Goexit killed
		// the only worker and the sweep deadlocked on the job channel.
		Ns: []int{12}, Seeds: 4, Parallelism: 1,
		Base: simnet.Config{
			Duration: 2, Warmup: -1,
			Observer: func(simnet.ObsEvent) { runtime.Goexit() },
			Metrics:  reg,
		},
	}
	cells := Sweep(spec)
	if len(cells) != 4 {
		t.Fatalf("cell count %d, want 4", len(cells))
	}
	for _, c := range cells {
		if !errors.Is(c.Err, errCellTerminated) {
			t.Fatalf("Goexit cell Err = %v, want errCellTerminated", c.Err)
		}
		if c.R != nil {
			t.Fatalf("Goexit cell carries results: %+v", c)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.SweepCellsFailed]; got != 4 {
		t.Errorf("%s = %d, want 4", obs.SweepCellsFailed, got)
	}
}

// TestSweepGoexitDoesNotPoisonHealthyCells mixes one Goexit cell with
// a healthy one on a single worker: the worker must survive the Goexit
// and run the remaining cell to normal completion.
func TestSweepGoexitDoesNotPoisonHealthyCells(t *testing.T) {
	// Parallelism 1 runs the cells sequentially on one worker, so the
	// observer's call counter is race-free and the first cell is the
	// one that dies.
	var calls int
	spec := SweepSpec{
		Ns: []int{12, 14}, Seeds: 1, Parallelism: 1,
		Base: simnet.Config{
			Duration: 2, Warmup: -1,
			Observer: func(simnet.ObsEvent) {
				calls++
				if calls == 1 {
					runtime.Goexit()
				}
			},
		},
	}
	cells := Sweep(spec)
	if !errors.Is(cells[0].Err, errCellTerminated) {
		t.Fatalf("first cell Err = %v, want errCellTerminated", cells[0].Err)
	}
	if cells[1].Err != nil || cells[1].R == nil {
		t.Fatalf("second cell did not survive the worker's Goexit: %+v", cells[1])
	}
}

var _ cluster.Elector = setupPanicElector{}
