// Package runner drives the experiment harness: multi-seed parameter
// sweeps executed on a bounded worker pool, aggregation of per-cell
// results, text-table rendering, and the experiment registry that maps
// the paper's figures and claims (E1–E15, ablations A1–A3; see
// DESIGN.md §4) to runnable code.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// SweepSpec describes a (N × seed) sweep of simulations.
type SweepSpec struct {
	Ns    []int
	Seeds int
	// Base is the configuration template; N and Seed are overwritten
	// per cell. Base.Metrics, when set, also receives the sweep-level
	// metrics (per-cell wall time, cells ok/failed).
	Base simnet.Config
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int
	// SeedBase offsets the seeds so different experiments decorrelate.
	SeedBase uint64
	// Progress, when non-nil, receives one line per completed cell:
	// cells finished/failed, the cell's wall time, and an ETA.
	Progress io.Writer
}

// CellResult is one simulation outcome within a sweep.
type CellResult struct {
	N    int
	Seed uint64
	R    *simnet.Results
	Err  error
}

// Sweep runs every (N, seed) cell on a worker pool and returns results
// in deterministic (N-major, seed-minor) order regardless of
// completion order. A panic inside one cell is captured into that
// cell's Err (as a *par.PanicError with the worker's stack) instead of
// tearing down the whole sweep.
//
// Core budget: Parallelism (default GOMAXPROCS) bounds the total
// concurrency. When Base.IntraTickParallelism is set, the cell-level
// worker count shrinks to Parallelism / IntraTickParallelism so the
// product stays within budget. When it is unset and the sweep has
// fewer cells than the budget, the spare cores are handed to every
// cell as intra-tick workers — a sweep of a few large cells then uses
// the machine instead of idling most of it. In every case
// cellPar·intra ≤ cores holds (see coreBudget).
func Sweep(spec SweepSpec) []CellResult {
	cores := spec.Parallelism
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	type job struct {
		idx  int
		n    int
		seed uint64
	}
	// Seeds derive from the cell index, not from (N, s): deriving from N
	// gave duplicate entries in Ns byte-identical runs, silently halving
	// the effective sample size of such sweeps.
	var jobs []job
	for _, n := range spec.Ns {
		for s := 0; s < spec.Seeds; s++ {
			idx := len(jobs)
			jobs = append(jobs, job{idx: idx, n: n, seed: spec.SeedBase + uint64(idx)*1000003})
		}
	}
	cellPar, intra := coreBudget(cores, spec.Base.IntraTickParallelism, len(jobs))
	prog := obs.NewProgress(spec.Progress, len(jobs), spec.Base.Metrics)
	out := make([]CellResult, len(jobs))
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cellPar; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cfg := spec.Base
				cfg.N = j.n
				cfg.Seed = j.seed
				cfg.IntraTickParallelism = intra
				out[j.idx] = runCell(cfg, j.n, j.seed, prog)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return out
}

// errCellTerminated marks a cell whose goroutine exited without
// completing — a runtime.Goexit mid-run (e.g. a test helper calling
// FailNow from an Observer). par.Recover cannot intercept Goexit, so
// the deferred accounting reports this sentinel instead of success.
var errCellTerminated = fmt.Errorf("runner: cell goroutine terminated before completion")

// runCell executes one sweep cell on a dedicated goroutine so that
// nothing a cell does can kill the shared worker: a panic is captured
// by par.Recover into Err, and a runtime.Goexit (which unwinds past
// Recover) still runs the deferred cell accounting — counted failed,
// with errCellTerminated recorded — and still returns to the worker
// loop. Without the extra goroutine a Goexit would take the worker
// down with the cell's progress never reported, deadlocking Sweep's
// unbuffered job send once every worker died that way.
func runCell(cfg simnet.Config, n int, seed uint64, prog *obs.Progress) CellResult {
	res := CellResult{N: n, Seed: seed}
	done := make(chan struct{})
	go func() {
		defer close(done) // registered first so it runs after the cell accounting
		cell := prog.CellStart(n, seed)
		res.Err = errCellTerminated // overwritten on normal completion
		defer func() { cell.Done(res.Err) }()
		var r *simnet.Results
		var err error
		if perr := par.Recover(func() { r, err = simnet.Run(cfg) }); perr != nil {
			r, err = nil, perr
		}
		res.R, res.Err = r, err
	}()
	<-done
	return res
}

// coreBudget splits a budget of cores between cell-level workers and
// per-cell intra-tick workers. Invariants, for any input:
//
//	cellPar ≥ 1
//	cellPar · max(intra, 1) ≤ max(cores, 1)
//
// intra > 1 is an explicit per-cell worker request: it is clamped to
// the budget (cores/intra used to round to 0 and leave cellPar at 1
// with the full intra — cores=4, intra=8 oversubscribed to 8 workers).
// intra == 0 with fewer jobs than cores hands the spare cores to every
// cell; intra == 0 is returned unchanged when no spare exists, meaning
// "serial cells". The returned intra, not the requested one, must be
// written into each cell's config.
func coreBudget(cores, intra, jobs int) (cellPar, intraOut int) {
	if cores < 1 {
		cores = 1
	}
	switch {
	case intra > 1:
		if intra > cores {
			intra = cores
		}
		cellPar = cores / intra
	case intra == 0 && jobs > 0 && jobs < cores:
		cellPar = jobs
		if spare := cores / cellPar; spare > 1 {
			intra = spare
		}
	default:
		// intra == 1 (explicitly serial cells) or enough jobs to fill
		// the budget with serial cells.
		cellPar = cores
	}
	if cellPar < 1 {
		cellPar = 1
	}
	return cellPar, intra
}

// AggRow aggregates all seeds of one N.
type AggRow struct {
	N          int
	Phi        stats.Welford
	Gamma      stats.Welford
	Total      stats.Welford
	F0         stats.Welford
	MeanLevels stats.Welford
	Giant      stats.Welford

	PhiByLevel    []stats.Welford
	GammaByLevel  []stats.Welford
	FMigByLevel   []stats.Welford
	GPrimeByLevel []stats.Welford
	HopByLevel    []stats.Welford
	NodesByLevel  []stats.Welford
	EdgesByLevel  []stats.Welford
}

func addAt(ws *[]stats.Welford, k int, v float64) {
	for len(*ws) <= k {
		*ws = append(*ws, stats.Welford{})
	}
	(*ws)[k].Add(v)
}

// Aggregate groups cells by N (in first-seen order) and averages.
// Cells with errors are returned in errs.
func Aggregate(cells []CellResult) (rows []*AggRow, errs []error) {
	byN := map[int]*AggRow{}
	var order []int
	for _, c := range cells {
		if c.Err != nil {
			errs = append(errs, fmt.Errorf("N=%d seed=%d: %w", c.N, c.Seed, c.Err))
			continue
		}
		row := byN[c.N]
		if row == nil {
			row = &AggRow{N: c.N}
			byN[c.N] = row
			order = append(order, c.N)
		}
		r := c.R
		row.Phi.Add(r.PhiRate)
		row.Gamma.Add(r.GammaRate)
		row.Total.Add(r.TotalRate())
		row.F0.Add(r.F0)
		row.MeanLevels.Add(r.MeanLevels)
		row.Giant.Add(r.GiantFraction)
		// Each per-level slice is iterated by its own length: a seed
		// whose hierarchy is one level shallower (or a Results built by
		// other tooling) may carry slices of unequal lengths, and
		// indexing them all by one range used to panic.
		for k, v := range r.PhiRateByLevel {
			addAt(&row.PhiByLevel, k, v)
		}
		for k, v := range r.GammaRateByLevel {
			addAt(&row.GammaByLevel, k, v)
		}
		for k, v := range r.FMigByLevel {
			addAt(&row.FMigByLevel, k, v)
		}
		for k, v := range r.GPrimeByLevel {
			addAt(&row.GPrimeByLevel, k, v)
		}
		for k, v := range r.NodesByLevel {
			addAt(&row.NodesByLevel, k, v)
		}
		for k, v := range r.EdgesByLevel {
			addAt(&row.EdgesByLevel, k, v)
		}
		for k, v := range r.HopMeanByLevel {
			if v > 0 {
				addAt(&row.HopByLevel, k, v)
			}
		}
	}
	for _, n := range order {
		rows = append(rows, byN[n])
	}
	return rows, errs
}

// Series extracts (N, value) pairs from aggregated rows for fitting.
func Series(rows []*AggRow, get func(*AggRow) float64) (ns, ys []float64) {
	for _, r := range rows {
		ns = append(ns, float64(r.N))
		ys = append(ys, get(r))
	}
	return
}
