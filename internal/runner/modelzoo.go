package runner

import (
	"fmt"
	"io"

	"repro/internal/simnet"
	"repro/internal/stats"
)

// Z1: the model-zoo matrix. The paper derives φ = Θ(log²N) and
// γ = Θ(log²N) under unit-disk links and uncorrelated random-waypoint
// motion; ROADMAP item 4 asks whether the bound survives correlated
// mobility (Gauss–Markov), constrained mobility (Manhattan),
// clustered mobility (hotspot), group motion (RPGM) and lossy radios
// (log-distance path loss + shadowing with hysteresis). Z1 re-runs the
// φ(N)/γ(N) measurement for every mobility × link cell of the registry
// under identical seeds — every cell sees the same SeedBase, so cell
// (m, l) and cell (m', l') differ only in the models, never in the
// random draws' provenance.
func runZ1(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "Z1 (model zoo): φ(N) and γ(N) per mobility × link model, identical seeds")
	fmt.Fprintln(w, "(paper regime: mobility=waypoint link=unitdisk; every other cell is an")
	fmt.Fprintln(w, "out-of-model probe of the Θ(log²N) handoff bound)")
	tw := NewTable("mobility", "link", "N", "φ", "γ", "total", "f0", "giant")
	type cellFit struct {
		mob, link string
		ns, ys    []float64
	}
	var fits []cellFit
	for _, mob := range simnet.MobilityModels() {
		for _, link := range simnet.LinkModels() {
			base := baseConfig(sc)
			base.Mobility = mob
			base.Link = link
			// Same SeedBase for every cell: identical seeds across the
			// matrix, so differences are model effects, not draw effects.
			spec := sweepSpec(sc, base, 2600)
			rows, errs := Aggregate(Sweep(spec))
			if len(errs) > 0 {
				return fmt.Errorf("Z1 %s×%s: %w", mob, link, errs[0])
			}
			fit := cellFit{mob: mob, link: link}
			for _, r := range rows {
				tw.Rowf(mob, link, r.N, r.Phi.Mean(), r.Gamma.Mean(),
					r.Total.Mean(), r.F0.Mean(), r.Giant.Mean())
				fit.ns = append(fit.ns, float64(r.N))
				fit.ys = append(fit.ys, r.Total.Mean())
			}
			fits = append(fits, fit)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "total-rate power-law exponent per cell (polylog ⇒ p ≪ 0.5):")
	for _, f := range fits {
		// Report every failed fit (static's all-zero rates fail the
		// log-space fit with a non-degenerate error): a silently
		// missing row would read as a forgotten cell.
		if p, err := stats.PowerExponent(f.ns, f.ys); err == nil {
			fmt.Fprintf(w, "  %-12s × %-9s p = %+.3f\n", f.mob, f.link, p)
		} else {
			fmt.Fprintf(w, "  %-12s × %-9s exponent unavailable: %v\n", f.mob, f.link, err)
		}
	}
	fmt.Fprintln(w, "CHECK: every cell's exponent stays near the waypoint × unitdisk")
	fmt.Fprintln(w, "baseline (E15: p ≈ 0.75, already heavier than the paper's polylog) —")
	fmt.Fprintln(w, "no mobility process or radio swap collapses or rescues the growth")
	fmt.Fprintln(w, "shape, so it is a property of the hierarchy under motion, not an")
	fmt.Fprintln(w, "artifact of the RWP/unit-disk model pair.")
	return nil
}
