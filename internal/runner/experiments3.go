package runner

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/flatlm"
	"repro/internal/geom"
	"repro/internal/gls"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/netml"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/spatial"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// --- E16: measured flat-LM baselines ---

// runE16 drives the two non-hierarchical baselines (home agent,
// flooding) with the same mobility traces as CHLM and compares control
// traffic — the measured version of the paper's motivation and of the
// Θ(√N) strawman that E15 draws analytically.
func runE16(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E16 (motivation): measured LM control traffic, hierarchical vs flat,")
	fmt.Fprintln(w, "pkts/node/s on identical mobility traces. Flat schemes update after a")
	fmt.Fprintln(w, "node moves R_TX/2; CHLM column is φ+γ+registration+updates.")
	tw := NewTable("N", "CHLM total", "home-agent", "flooding", "ratio flood/CHLM")
	for _, n := range sc.Ns {
		cfg := baseConfig(sc)
		cfg.N = n
		cfg.Seed = uint64(1600 + n)
		var (
			agent        *flatlm.HomeAgent
			flood        *flatlm.Flooding
			aPkts, fPkts float64
			ticks        int
			posCopy      = make([]geom.Vec, n)
		)
		cfg.Observer = func(ev simnet.ObsEvent) {
			if ev.Time <= cfg.Warmup {
				return
			}
			copy(posCopy, ev.Positions)
			if agent == nil {
				hop := topology.NewEuclideanHops(posCopy, 100, 1.3)
				agent = flatlm.NewHomeAgent(n, 50, hop)
				flood = flatlm.NewFlooding(n, 50)
				agent.Tick(posCopy) // initial registration not counted
				flood.Tick(posCopy)
				return
			}
			aPkts += agent.Tick(posCopy)
			fPkts += flood.Tick(posCopy)
			ticks++
		}
		r, err := simnet.Run(cfg)
		if err != nil {
			return err
		}
		scan := r.Config.ScanInterval
		//lint:ignore floateq zero is the unset-config sentinel
		if scan == 0 {
			scan = 1
		}
		T := float64(ticks) * scan
		//lint:ignore floateq exact-zero guard before division
		if T == 0 {
			T = 1
		}
		chlm := r.TotalRate() + r.RegRate + r.UpdateRate
		aRate := aPkts / (float64(n) * T)
		fRate := fPkts / (float64(n) * T)
		tw.Rowf(n, chlm, aRate, fRate, fRate/chlm)
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: flat dissemination is Θ(N) per node and a rendezvous point Θ(√N);")
	fmt.Fprintln(w, "       the hierarchy's growth must stay below both — check the columns' slopes.")
	return nil
}

// --- E17: query absorption (§6) ---

func runE17(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E17 (§6): location-query cost vs session traffic. The paper argues a")
	fmt.Fprintln(w, "query costs the same order as the q->d hop count and happens once per")
	fmt.Fprintln(w, "session, so it is absorbed; the ratio column must stay small and flat.")
	tw := NewTable("N", "sessions", "query pkts", "session pkts", "query/session", "GLS query")
	for _, n := range sc.Ns {
		// Static snapshot per N: queries probe the LM structure; their
		// cost model needs no mobility.
		cfg := simnet.Config{N: n, Seed: uint64(1700 + n)}
		region := cfg.Region()
		src := rng.NewRoot(cfg.Seed).Stream("static-layout")
		pos := make([]geom.Vec, n)
		for i := range pos {
			pos[i] = region.Sample(src)
		}
		g := topology.BuildUnitDiskBrute(pos, 100)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		giant := topology.GiantComponent(g, all)
		tr := cluster.NewIdentityTracker()
		h, ids := cluster.BuildWithIdentities(g, giant, cluster.Config{ForceTopAt: 12}, nil, nil, tr, 0)
		sel := lm.NewSelector(nil)
		hop := topology.NewEuclideanHops(pos, 100, 1.3)

		gen := workload.MustNewGenerator(workload.Config{Rate: 0.05, PacketsPerSession: 20},
			rng.NewRoot(cfg.Seed).Stream("workload"))
		var st workload.Stats
		for tick := 0; tick < 60; tick++ {
			gen.Tick(1.0, h, ids, sel, hop, &st)
		}

		// GLS query cost on the same layout for comparison.
		grid := gls.NewGrid(region, 100)
		idx := gls.NewIndex(grid, pos)
		qsrc := rng.NewRoot(cfg.Seed).Stream("gls-queries")
		var glsSum float64
		var glsN int
		for i := 0; i < 200; i++ {
			q := giant[qsrc.Intn(len(giant))]
			d := giant[qsrc.Intn(len(giant))]
			if q == d {
				continue
			}
			if res := idx.Query(q, d, n, hop.Hops); res.Found {
				glsSum += float64(res.Packets)
				glsN++
			}
		}
		glsAvg := 0.0
		if glsN > 0 {
			glsAvg = glsSum / float64(glsN)
		}
		tw.Rowf(n, st.Sessions, st.QueryPkts.Mean(), st.RoutePkts.Mean(),
			st.QueryToRoute.Mean(), glsAvg)
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: query/session stays roughly constant with N (absorption holds).")
	return nil
}

// --- E18: node birth/death (the paper's excluded case) ---

func runE18(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E18 (extension): node death/birth churn — the paper assumes this is")
	fmt.Fprintln(w, "\"extremely rare\" and does not evaluate it (§1). Sweeping the churn rate")
	fmt.Fprintln(w, "shows when that assumption matters: handoff (φ+γ) barely moves, but")
	fmt.Fprintln(w, "re-registration of returning nodes grows linearly with churn.")
	tw := NewTable("deaths/node/hour", "measured", "φ", "γ", "reg", "updates", "giant")
	n := sc.BigN
	for _, perHour := range []float64{0, 3.6, 18, 72, 180} {
		cfg := baseConfig(sc)
		cfg.N = n
		cfg.Seed = uint64(1800 + int(perHour*10))
		cfg.ChurnRate = perHour / 3600
		r, err := simnet.Run(cfg)
		if err != nil {
			return err
		}
		tw.Rowf(perHour, r.DeathRate*3600, r.PhiRate, r.GammaRate, r.RegRate, r.UpdateRate, r.GiantFraction)
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: at realistic churn (a few deaths/node/hour) every column is within")
	fmt.Fprintln(w, "noise of the churn-free row — the paper's exclusion is justified. At extreme")
	fmt.Fprintln(w, "churn the network itself degrades (giant column): nodes spend their downtime")
	fmt.Fprintln(w, "outside the LM, so all traffic falls with the population, not because of LM.")
	return nil
}

// --- E19: handoff latency through the message layer ---

// runE19 replays the simulation with LM entry transfers dispatched as
// real hop-by-hop messages through the DES network layer, measuring
// handoff *latency* per hierarchy level. The paper's model implies a
// level-k handoff completes in Θ(h_k) per-hop delays.
func runE19(w io.Writer, sc Scale) error {
	const perHop = 0.005 // 5 ms per transmission
	n := sc.BigN
	fmt.Fprintf(w, "E19 (extension): LM entry-transfer latency by level at N=%d,\n", n)
	fmt.Fprintf(w, "%.0f ms per hop, transfers forwarded hop-by-hop with rerouting.\n", perHop*1000)

	cfg := simnet.Config{N: n, Seed: 1900, Duration: sc.Duration, Warmup: sc.Warmup}
	region := cfg.Region()
	root := rng.NewRoot(cfg.Seed)
	model := mobility.NewWaypoint(region, 10, root.Stream("mobility"))
	pos := model.Init(n)
	grid := spatial.NewGridForDisc(region, 100, n)
	for i, p := range pos {
		grid.Insert(i, p)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	tr := cluster.NewIdentityTracker()
	ccfg := cluster.Config{ForceTopAt: 12}
	sel := lm.NewSelector(nil)

	graph := topology.BuildUnitDisk(n, pos, 100, grid)
	h, ids := cluster.BuildWithIdentities(graph, topology.GiantComponent(graph, nodes), ccfg, nil, nil, tr, 0)
	table := sel.BuildTable(h, ids)

	engine := sim.NewEngine()
	nw := netml.New(engine, graph, perHop, 0)

	latency := map[int]*stats.Welford{}
	hops := map[int]*stats.Welford{}
	var failures int
	engine.Ticker(1, 1, "scan", func(e *sim.Engine) {
		now := e.Now()
		model.AdvanceTo(now, pos)
		for i, p := range pos {
			grid.Update(i, p)
		}
		g2 := topology.BuildUnitDisk(n, pos, 100, grid)
		nw.Rebind(g2)
		h2, ids2 := cluster.BuildWithIdentities(g2, topology.GiantComponent(g2, nodes), ccfg, h, ids, tr, now)
		t2 := sel.UpdateTable(table, h, ids, h2, ids2)
		if now > cfg.Warmup {
			for _, td := range lm.DiffTables(table, t2) {
				if td.OldServer < 0 || td.NewServer < 0 {
					continue
				}
				level := td.Level
				nw.Send(td.OldServer, td.NewServer, func(d netml.Delivery) {
					if !d.OK {
						failures++
						return
					}
					if latency[level] == nil {
						latency[level] = &stats.Welford{}
						hops[level] = &stats.Welford{}
					}
					latency[level].Add(d.Latency * 1000) // ms
					hops[level].Add(float64(d.Hops))
				})
			}
		}
		graph, h, ids, table = g2, h2, ids2, t2
	})
	engine.RunUntil(cfg.Warmup + cfg.Duration)

	tw := NewTable("k", "transfers", "mean hops", "latency (ms)")
	maxK := 0
	//lint:ignore maprange max over keys; the result is order-free
	for k := range latency {
		if k > maxK {
			maxK = k
		}
	}
	for k := 1; k <= maxK; k++ {
		if latency[k] == nil || latency[k].N() == 0 {
			continue
		}
		tw.Rowf(k, latency[k].N(), hops[k].Mean(), latency[k].Mean())
	}
	fmt.Fprint(w, tw.String())
	sent, delivered, failed := nw.Stats()
	fmt.Fprintf(w, "messages: %d sent, %d delivered, %d failed (partitions/reroute dead-ends)\n",
		sent, delivered, failed)
	fmt.Fprintln(w, "CHECK: latency grows with level ∝ mean hops — a level-k handoff takes Θ(h_k) hop-delays.")
	return nil
}

// --- A6: group mobility ---

// runA6 swaps random waypoint for reference-point group mobility
// (RPGM) — the group-movement scenario HSR (which the paper cites in
// §2.1) was designed for. Clusters align with groups, so cluster
// membership churn is driven by group encounters rather than
// individual boundary crossings.
func runA6(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A6 (ablation): random waypoint vs group mobility (RPGM, 16-node groups,")
	fmt.Fprintln(w, "wander radius 2·R_TX). Hierarchical LM should benefit when motion is")
	fmt.Fprintln(w, "group-structured — the scenario hierarchical routing was designed for.")
	tw := NewTable("N", "mobility", "f0", "φ", "γ", "total")
	for _, n := range sc.Ns {
		for _, mob := range []string{simnet.MobilityWaypoint, simnet.MobilityGroup} {
			cfg := baseConfig(sc)
			cfg.N = n
			cfg.Seed = uint64(2600 + n)
			cfg.Mobility = mob
			r, err := simnet.Run(cfg)
			if err != nil {
				return err
			}
			tw.Rowf(n, mob, r.F0, r.PhiRate, r.GammaRate, r.TotalRate())
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: handoff totals drop under RPGM — group-coherent motion preserves")
	fmt.Fprintln(w, "clusters even though dense groups keep level-0 links churning.")
	return nil
}
