package runner

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/analytic"
	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/gls"
	"repro/internal/lm"
	"repro/internal/maxmin"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
)

// --- E7: φ(N) scaling ---

func runE7(w io.Writer, sc Scale) error {
	spec := sweepSpec(sc, baseConfig(sc), 700)
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintln(w, "E7 (Eq. 6): migration handoff overhead φ, packets/node/s")
	tw := NewTable("N", "φ", "±95%", "φ1", "φ2", "φ3", "φ4")
	for _, r := range rows {
		cells := []any{r.N, r.Phi.Mean(), r.Phi.CI95()}
		for k := 1; k <= 4; k++ {
			v := 0.0
			if k < len(r.PhiByLevel) {
				v = r.PhiByLevel[k].Mean()
			}
			cells = append(cells, v)
		}
		tw.Rowf(cells...)
	}
	fmt.Fprint(w, tw.String())
	ns, ys := Series(rows, func(r *AggRow) float64 { return r.Phi.Mean() })
	fprintFits(w, "φ(N)", ns, ys)
	fmt.Fprintln(w, "PAPER: φ = Θ(log²N); a sub-√N power exponent confirms the polylog shape.")
	return nil
}

// --- E8: g'_k = O(1/h_k) ---

func runE8(w io.Writer, sc Scale) error {
	base := baseConfig(sc)
	base.SampleHops = 25
	spec := sweepSpec(sc, base, 800)
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintln(w, "E8 (Eq. 14): cluster-migration link events per level-k link per second")
	tw := NewTable("N", "k", "|E_k|", "g'_k", "h_k", "g'_k·h_k")
	for _, r := range rows {
		for k := 1; k < len(r.GPrimeByLevel); k++ {
			gp := r.GPrimeByLevel[k].Mean()
			hk := 0.0
			if k < len(r.HopByLevel) {
				hk = r.HopByLevel[k].Mean()
			}
			//lint:ignore floateq exact-zero sentinel for levels with no observations
			if gp == 0 || hk == 0 {
				continue
			}
			tw.Rowf(r.N, k, r.EdgesByLevel[k].Mean(), gp, hk, gp*hk)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: g'_k·h_k ≈ constant across k (Eq. 14), so γ_k = O(log N).")
	return nil
}

// --- E9: γ(N) scaling ---

func runE9(w io.Writer, sc Scale) error {
	spec := sweepSpec(sc, baseConfig(sc), 900)
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintln(w, "E9 (Eqs. 10-11): reorganization handoff overhead γ, packets/node/s")
	tw := NewTable("N", "γ", "±95%", "γ1", "γ2", "γ3", "γ4")
	for _, r := range rows {
		cells := []any{r.N, r.Gamma.Mean(), r.Gamma.CI95()}
		for k := 1; k <= 4; k++ {
			v := 0.0
			if k < len(r.GammaByLevel) {
				v = r.GammaByLevel[k].Mean()
			}
			cells = append(cells, v)
		}
		tw.Rowf(cells...)
	}
	fmt.Fprint(w, tw.String())
	ns, ys := Series(rows, func(r *AggRow) float64 { return r.Gamma.Mean() })
	fprintFits(w, "γ(N)", ns, ys)
	fmt.Fprintln(w, "PAPER: γ = Θ(log²N).")
	return nil
}

// --- E10: event class breakdown ---

func runE10(w io.Writer, sc Scale) error {
	cfg := baseConfig(sc)
	cfg.N = sc.BigN
	cfg.Seed = 10
	cfg.TrackClasses = true
	r, err := simnet.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E10 (§5.2): reorganization trigger classes, events/s at N=%d over %.0fs\n", cfg.N, r.Duration)
	tw := NewTable("k", "i:link-up", "ii:link-down", "iii:elec", "iv:rej", "v:rec-elec", "vi:rec-rej", "vii:nbr-elec")
	levels := make([]int, 0, len(r.Classes))
	for k := range r.Classes {
		levels = append(levels, k)
	}
	sort.Ints(levels)
	for _, k := range levels {
		cells := []any{k}
		for _, c := range lm.EventClasses() {
			cells = append(cells, float64(r.Classes[k][c])/r.Duration)
		}
		tw.Rowf(cells...)
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: every class frequency decays with level (Θ(1/h_k) per link);")
	fmt.Fprintln(w, "       election and rejection rates balance in steady state (Eq. 24).")
	// Steady-state balance check.
	var elec, rej float64
	for _, k := range levels {
		elec += float64(r.Classes[k][lm.EventElection] + r.Classes[k][lm.EventRecursiveElec])
		rej += float64(r.Classes[k][lm.EventRejection] + r.Classes[k][lm.EventRecursiveRej])
	}
	fmt.Fprintf(w, "election/rejection balance: %.0f vs %.0f (ratio %.3f)\n", elec, rej, elec/math.Max(rej, 1))
	return nil
}

// --- E11: q1 estimation (the paper's future work) ---

func runE11(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E11 (Eq. 22): critical-state probabilities p_j and q_1 — the paper defers")
	fmt.Fprintln(w, "this measurement to future work; Eq. 22 needs q_1 bounded away from 0.")
	tw := NewTable("N", "p_1", "p_2", "p_3", "q_1(k=2)", "q_1(k=3)", "q_1(k=4)")
	base := baseConfig(sc)
	base.TrackStates = true
	for _, n := range sc.Ns {
		cfg := base
		cfg.N = n
		cfg.Seed = uint64(1100 + n)
		r, err := simnet.Run(cfg)
		if err != nil {
			return err
		}
		p := func(j int) float64 { v, _ := r.States.P1(j); return v }
		tw.Rowf(n, p(1), p(2), p(3),
			r.States.Q1(2), r.States.Q1(3), r.States.Q1(4))
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: q_1 columns stay > ε > 0 as N grows (supports Eq. 22/23).")
	return nil
}

// --- E12: |E_k| scaling ---

func runE12(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E12 (Eq. 13): level-k link counts vs 1/c_k (static layouts)")
	tw := NewTable("N", "k", "|V_k|", "|E_k|", "c_k", "|E_k|·c_k/N")
	for _, n := range sc.Ns {
		h, _ := staticHierarchy(n, uint64(1200+n))
		n0 := float64(len(h.LevelNodes(0)))
		for k := 0; k <= h.L(); k++ {
			lvl := h.Level(k)
			ck := h.Aggregation(k)
			tw.Rowf(n, k, len(lvl.Nodes), lvl.Graph.EdgeCount(), ck,
				float64(lvl.Graph.EdgeCount())*ck/n0)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: |E_k|·c_k/|V| ≈ constant (Eq. 13b): links thin out as fast as clusters grow.")
	return nil
}

// --- E13: routing tables and stretch ---

func runE13(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E13 (§2.1): routing state and path stretch, hierarchical vs flat")
	tw := NewTable("N", "flat entries", "hier entries", "reduction", "mean stretch")
	for _, n := range sc.Ns {
		h, _ := staticHierarchy(n, uint64(1300+n))
		r := routing.NewRouter(h)
		nodes := h.LevelNodes(0)
		hier := routing.MeanHierTableSize(h)
		flat := float64(routing.FlatTableSize(len(nodes)))
		var stretch stats.Welford
		srcIdx := 0
		for i := 0; i < 250; i++ {
			s := nodes[(srcIdx*7919+i*104729)%len(nodes)]
			d := nodes[(srcIdx*7907+i*130363)%len(nodes)]
			if s == d {
				continue
			}
			if st := r.Stretch(s, d); st > 0 {
				stretch.Add(st)
			}
		}
		tw.Rowf(n, flat, hier, flat/hier, stretch.Mean())
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER ([7], [14]): hierarchical state = Θ(log N) per node at bounded stretch.")
	return nil
}

// --- E14: CHLM vs GLS ---

func runE14(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E14 (§3): LM maintenance traffic, CHLM vs GLS, packets/node/s")
	tw := NewTable("N", "CHLM φ+γ", "GLS updates", "GLS changes/node/s")
	for _, n := range sc.Ns {
		cfg := baseConfig(sc)
		cfg.N = n
		cfg.Seed = uint64(1400 + n)
		region := cfg.Region()
		grid := gls.NewGrid(region, 100)
		var (
			prevTable *gls.Table
			glsCost   float64
			glsCount  float64
			ticks     int
		)
		posCopy := make([]geom.Vec, n)
		cfg.Observer = func(ev simnet.ObsEvent) {
			if ev.Time <= cfg.Warmup {
				return
			}
			copy(posCopy, ev.Positions)
			idx := gls.NewIndex(grid, posCopy)
			table := gls.BuildTable(idx, n)
			if prevTable != nil {
				hop := topology.NewEuclideanHops(posCopy, 100, 1.3)
				changed, cost := gls.DiffCount(prevTable, table, hop.Hops)
				glsCost += float64(cost)
				glsCount += float64(changed)
				ticks++
			}
			prevTable = table
		}
		r, err := simnet.Run(cfg)
		if err != nil {
			return err
		}
		T := float64(ticks) * 1.0 // observer ticks at the scan interval (1 s default)
		//lint:ignore floateq zero is the unset-config sentinel
		if r.Config.ScanInterval != 0 {
			T = float64(ticks) * r.Config.ScanInterval
		}
		//lint:ignore floateq exact-zero guard before division
		if T == 0 {
			T = 1
		}
		tw.Rowf(n, r.TotalRate(), glsCost/(float64(n)*T), glsCount/(float64(n)*T))
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: both are polylogarithmic designs; CHLM follows the cluster structure")
	fmt.Fprintln(w, "       (no fixed grid), so absolute constants differ — compare the growth shape.")
	return nil
}

// --- E15: headline total ---

func runE15(w io.Writer, sc Scale) error {
	// Two regimes: the paper's literal memoryless ALCA, and the
	// stabilized clustering stack (debounced elections + forced top)
	// under which the paper's event-frequency premises hold best.
	literal := sweepSpec(sc, baseConfig(sc), 1500)
	rowsLit, errs := Aggregate(Sweep(literal))
	if len(errs) > 0 {
		return errs[0]
	}
	stab := literal
	stab.Base = StabilizedConfig(stab.Base)
	stab.SeedBase = 1550
	rowsStab, errs := Aggregate(Sweep(stab))
	if len(errs) > 0 {
		return errs[0]
	}
	if len(rowsLit) == 0 || len(rowsStab) == 0 {
		return fmt.Errorf("no results")
	}
	// Calibrate the analytic model at the smallest N of the stabilized
	// series (the regime the analysis describes).
	first := rowsStab[0]
	alpha := 3.5
	if len(first.NodesByLevel) > 1 && first.NodesByLevel[1].Mean() > 0 {
		alpha = float64(first.N) / first.NodesByLevel[1].Mean()
	}
	model := analytic.Default(alpha)
	model.F0 = first.F0.Mean()
	model = model.Calibrate(float64(first.N), first.Phi.Mean(), first.Gamma.Mean())

	fmt.Fprintln(w, "E15 (headline): total LM handoff overhead φ+γ vs N — paper-literal ALCA")
	fmt.Fprintln(w, "vs stabilized clustering, the paper's Θ(log²N) model calibrated at the")
	fmt.Fprintln(w, "smallest stabilized point, and a flat-LM Θ(√N) strawman.")
	tw := NewTable("N", "ALCA φ+γ", "stabilized φ+γ", "±95%", "model log²N", "flat √N", "L̄(stab)")
	for i, r := range rowsStab {
		lit := 0.0
		if i < len(rowsLit) {
			lit = rowsLit[i].Total.Mean()
		}
		tw.Rowf(r.N, lit, r.Total.Mean(), r.Total.CI95(),
			model.Total(float64(r.N)), model.FlatLMUpdate(float64(r.N)), r.MeanLevels.Mean())
	}
	fmt.Fprint(w, tw.String())
	nsL, ysL := Series(rowsLit, func(r *AggRow) float64 { return r.Total.Mean() })
	fprintFits(w, "ALCA total(N)", nsL, ysL)
	nsS, ysS := Series(rowsStab, func(r *AggRow) float64 { return r.Total.Mean() })
	fprintFits(w, "stabilized total(N)", nsS, ysS)
	fmt.Fprintln(w, "PAPER: link capacity need only grow polylogarithmically (conclusion, §6).")
	fmt.Fprintln(w, "Both regimes stay an order of magnitude below the flat-LM strawman; the")
	fmt.Fprintln(w, "stabilized stack also shrinks the absolute constants several-fold.")
	return nil
}

// --- A1: sticky ALCA ablation ---

func runA1(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A1 (ablation): election hysteresis ladder — the paper's memoryless LCA,")
	fmt.Fprintln(w, "LCC-style sticky elections, and debounced elections with level-scaled grace.")
	tw := NewTable("N", "elector", "φ", "γ", "total", "L̄")
	for _, n := range sc.Ns {
		electors := []func() cluster.Elector{
			func() cluster.Elector { return cluster.MemorylessLCA{} },
			func() cluster.Elector { return cluster.StickyLCA{} },
			func() cluster.Elector { return &cluster.DebouncedLCA{Grace: 10, LevelScale: 1.9} },
		}
		for _, mk := range electors {
			el := mk() // fresh elector state per run
			cfg := baseConfig(sc)
			cfg.N = n
			cfg.Seed = uint64(2100 + n)
			cfg.Elector = el
			r, err := simnet.Run(cfg)
			if err != nil {
				return err
			}
			tw.Rowf(n, el.Name(), r.PhiRate, r.GammaRate, r.TotalRate(), r.MeanLevels)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: each hysteresis rung cuts reorganization churn; the hierarchy also")
	fmt.Fprintln(w, "gets shallower and steadier as clusters live longer.")
	return nil
}

// --- A4: naive head-ID naming ---

func runA4(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A4 (ablation): cluster identity continuity vs naive head-ID naming.")
	fmt.Fprintln(w, "With naive naming every clusterhead relabel re-homes the subtree's entries.")
	tw := NewTable("N", "naming", "φ", "γ", "total")
	for _, n := range sc.Ns {
		for _, naive := range []bool{false, true} {
			cfg := baseConfig(sc)
			cfg.N = n
			cfg.Seed = uint64(2400 + n)
			cfg.NaiveNaming = naive
			r, err := simnet.Run(cfg)
			if err != nil {
				return err
			}
			name := "logical-ids"
			if naive {
				name = "head-ids"
			}
			tw.Rowf(n, name, r.PhiRate, r.GammaRate, r.TotalRate())
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: head-ID naming inflates γ — the identity-churn artifact the paper's")
	fmt.Fprintln(w, "persistent-cluster model implicitly assumes away (DESIGN.md §5).")
	return nil
}

// --- A5: uncapped hierarchy top ---

func runA5(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A5 (ablation): forced-top cap vs recursing to a single elected top.")
	fmt.Fprintln(w, "Without the cap, the top levels have arity 2-3 and their member lists churn;")
	fmt.Fprintln(w, "each top event re-homes Θ(N/m) entries across Θ(√N) hops.")
	tw := NewTable("N", "top", "φ", "γ", "total", "L̄")
	for _, n := range sc.Ns {
		for _, capped := range []bool{true, false} {
			cfg := baseConfig(sc)
			cfg.N = n
			cfg.Seed = uint64(2500 + n)
			if !capped {
				cfg.TopArity = -1
			}
			r, err := simnet.Run(cfg)
			if err != nil {
				return err
			}
			name := "forced@12"
			if !capped {
				name = "uncapped"
			}
			tw.Rowf(n, name, r.PhiRate, r.GammaRate, r.TotalRate(), r.MeanLevels)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: the cap removes the tiny-arity top levels and their γ contribution.")
	return nil
}

// --- A2: max-min d=2 ablation ---

func runA2(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A2 (ablation): max-min d=2 clustering vs LCA (d=1)")
	tw := NewTable("N", "clusterer", "L̄", "φ", "γ", "total")
	for _, n := range sc.Ns {
		type variant struct {
			name    string
			elector cluster.Elector
			reach   int
		}
		for _, v := range []variant{
			{"lca", cluster.MemorylessLCA{}, 1},
			{"maxmin-d2", maxmin.Clusterer{D: 2}, 2},
		} {
			cfg := baseConfig(sc)
			cfg.N = n
			cfg.Seed = uint64(2200 + n)
			cfg.Elector = v.elector
			r, err := simnet.Run(cfg)
			if err != nil {
				return err
			}
			tw.Rowf(n, v.name, r.MeanLevels, r.PhiRate, r.GammaRate, r.TotalRate())
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "CHECK: d=2 aggregates faster (fewer levels); overhead stays polylog-shaped.")
	return nil
}

// --- A3: hash family load equity ---

func runA3(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "A3 (ablation, §3.2 remark): server-load equity by hash family")
	tw := NewTable("N", "hash", "mean load", "max load", "max/mean")
	for _, n := range sc.Ns {
		h, _ := staticHierarchy(n, uint64(2300+n))
		n0 := len(h.LevelNodes(0))
		// Head-ID (passthrough) identities: the skew the paper warns
		// about arises from Eq. (5) applied to clustered head IDs.
		tracker := cluster.NewIdentityTracker()
		tracker.Passthrough = true
		ids := tracker.Init(h)
		for _, hf := range []lm.HashFamily{lm.Rendezvous{}, lm.Successor{IDSpace: n}} {
			sel := lm.NewSelector(hf)
			table := sel.BuildTable(h, ids)
			load := table.Load()
			total, max := 0, 0
			//lint:ignore maprange commutative sum and max; the result is order-free
			for _, c := range load {
				total += c
				if c > max {
					max = c
				}
			}
			mean := float64(total) / float64(n0)
			tw.Rowf(n, hf.Name(), mean, max, float64(max)/math.Max(mean, 1e-9))
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: Eq. (5) applied directly would load low-ID clusters disproportionately;")
	fmt.Fprintln(w, "       CHLM needs the equitable family (rendezvous).")
	return nil
}
