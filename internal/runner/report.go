package runner

import (
	"fmt"
	"strings"
)

// TableWriter accumulates rows and renders an aligned text table, the
// output format of every experiment report.
type TableWriter struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *TableWriter {
	return &TableWriter{header: header}
}

// Row appends one row; cells beyond the header width are dropped,
// missing cells render empty.
func (t *TableWriter) Row(cells ...string) *TableWriter {
	row := make([]string, len(t.header))
	for i := 0; i < len(row) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
	return t
}

// Rowf appends one row of formatted cells: each argument is rendered
// with %v unless it is a float64, which renders compactly.
func (t *TableWriter) Rowf(cells ...any) *TableWriter {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			out = append(out, FormatFloat(v))
		case string:
			out = append(out, v)
		default:
			out = append(out, fmt.Sprintf("%v", v))
		}
	}
	return t.Row(out...)
}

// FormatFloat renders a float compactly with sensible precision.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	//lint:ignore floateq exact zero renders as "0"; approximate zeros must not
	case v == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.2f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// String renders the aligned table.
func (t *TableWriter) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
