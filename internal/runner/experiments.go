package runner

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/gls"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Scale sizes an experiment run. Quick keeps everything test-sized;
// Full reproduces the shapes with enough range to fit scaling laws.
type Scale struct {
	Ns       []int   `json:"ns"`       // sweep node counts
	Seeds    int     `json:"seeds"`    // seeds per cell
	Duration float64 `json:"duration"` // measured sim seconds
	Warmup   float64 `json:"warmup"`
	BigN     int     `json:"big_n"` // node count for single-N experiments
	Par      int     `json:"par"`   // worker-pool width (0 = GOMAXPROCS)
	// Engine selects the link engine for every simulation the
	// experiment launches ("" or "scan" = per-tick rescan, "kinetic" =
	// event-driven; see simnet.Config.Engine).
	Engine string `json:"engine,omitempty"`
	// Maintainer selects the hierarchy-maintenance strategy for every
	// simulation the experiment launches ("" or "oracle" = full ALCA
	// rebuild per tick, "incremental" = delta-patched; see
	// simnet.Config.Maintainer).
	Maintainer string `json:"maintainer,omitempty"`
	// Mobility and Link re-run the whole battery under a different
	// scenario model ("" = the paper regime: waypoint / unitdisk; see
	// simnet.MobilityModels and simnet.LinkModels). This is the sweep
	// axis Z1 iterates explicitly; setting it here instead re-points
	// every experiment (E4–E15 included) at one zoo cell.
	Mobility string `json:"mobility,omitempty"`
	Link     string `json:"link,omitempty"`

	// Metrics, when non-nil, receives run observability from every
	// simulation the experiment launches (phase timers, tick counters;
	// see internal/obs) plus sweep-level cell metrics. Threaded into
	// each config by baseConfig.
	Metrics *obs.Registry `json:"-"`
	// Progress, when non-nil, receives sweep progress lines (cells
	// finished/failed, per-cell wall time, ETA), typically os.Stderr.
	Progress io.Writer `json:"-"`
}

// QuickScale is used by tests and smoke runs.
func QuickScale() Scale {
	return Scale{Ns: []int{64, 128, 256}, Seeds: 2, Duration: 60, Warmup: 15, BigN: 128}
}

// FullScale is the default for cmd/experiments.
func FullScale() Scale {
	return Scale{Ns: []int{64, 128, 256, 512, 1024, 2048}, Seeds: 3, Duration: 240, Warmup: 60, BigN: 512}
}

// Experiment is one reproducible artifact from DESIGN.md §4.
type Experiment struct {
	ID    string
	Title string
	Paper string // the paper artifact/claim it regenerates
	Run   func(w io.Writer, sc Scale) error
}

// Registry returns all experiments in DESIGN.md order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "ALCA hierarchy example", "Fig. 1", runE1},
		{"E2", "GLS grid hierarchy", "Fig. 2", runE2},
		{"E3", "ALCA state dynamics", "Fig. 3", runE3},
		{"E4", "Level-0 link change rate", "Eq. 4: f_0 = Θ(1)", runE4},
		{"E5", "Intra-cluster hop scaling", "Eq. 3: h_k = Θ(√c_k)", runE5},
		{"E6", "Migration frequency vs level", "Eq. 9: f_k = Θ(1/h_k)", runE6},
		{"E7", "Migration handoff overhead", "Eq. 6: φ = Θ(log²N)", runE7},
		{"E8", "Cluster-link change rate", "Eq. 14: g'_k = O(1/h_k)", runE8},
		{"E9", "Reorganization handoff overhead", "Eqs. 10-11: γ = Θ(log²N)", runE9},
		{"E10", "Reorg trigger breakdown", "§5.2 events i-vii", runE10},
		{"E11", "Critical-state probability q1", "Eq. 22 (paper future work)", runE11},
		{"E12", "Level edge-count scaling", "Eq. 13: |E_k|/|V| = Θ(1/c_k)", runE12},
		{"E13", "Routing table size & stretch", "§2.1 / Kleinrock-Kamoun", runE13},
		{"E14", "CHLM vs GLS update cost", "§3 comparison", runE14},
		{"E15", "Total handoff overhead", "headline Θ(log²N)", runE15},
		{"E16", "Flat-LM baselines, measured", "motivation / §6", runE16},
		{"E17", "Query absorption", "§6 query argument", runE17},
		{"E18", "Node birth/death churn", "extension (§1 excluded case)", runE18},
		{"E19", "Handoff latency", "extension (message-level DES)", runE19},
		{"A1", "Election hysteresis ladder", "ablation", runA1},
		{"A2", "Max-min d=2 clustering", "ablation", runA2},
		{"A3", "Hash family load equity", "ablation (§3.2 remark)", runA3},
		{"A4", "Naive head-ID naming", "ablation (identity continuity)", runA4},
		{"A5", "Uncapped hierarchy top", "ablation (forced top)", runA5},
		{"A6", "Group mobility (RPGM)", "ablation (HSR motivation, §2.1)", runA6},
		{"Z1", "Model-zoo φ/γ matrix", "ROADMAP item 4 (out-of-model probe)", runZ1},
	}
}

// StabilizedConfig applies the full stabilization stack to a base
// configuration: LCC-style debounced elections with level-scaled grace
// and the forced-top cap (identity continuity is always on unless
// NaiveNaming). This is the regime in which the paper's Θ(1/h_k)
// event-frequency premises hold best; the paper-literal regime is the
// default (memoryless re-election).
func StabilizedConfig(cfg simnet.Config) simnet.Config {
	cfg.Elector = &cluster.DebouncedLCA{Grace: 10, LevelScale: 1.9}
	return cfg
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ---

// staticLayout builds a static uniform layout with the harness's
// standard density and returns positions and the unit-disk graph.
func staticLayout(n int, seed uint64) ([]geom.Vec, *topology.Graph, geom.Disc) {
	cfg := simnet.Config{N: n, Seed: seed}
	region := cfg.Region()
	src := rng.NewRoot(seed).Stream("static-layout")
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = region.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 100)
	return pos, g, region
}

// staticHierarchy clusters the giant component of a static layout.
func staticHierarchy(n int, seed uint64) (*cluster.Hierarchy, *topology.Graph) {
	_, g, _ := staticLayout(n, seed)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	return cluster.Build(g, giant, cluster.Config{}, nil), g
}

func baseConfig(sc Scale) simnet.Config {
	return simnet.Config{
		Duration: sc.Duration, Warmup: sc.Warmup, Metrics: sc.Metrics,
		Engine: sc.Engine, Maintainer: sc.Maintainer,
		Mobility: sc.Mobility, Link: sc.Link,
	}
}

// sweepSpec builds the standard sweep for an experiment: the scale's
// Ns × Seeds grid over base, with the scale's parallelism budget and
// progress sink attached.
func sweepSpec(sc Scale, base simnet.Config, seedBase uint64) SweepSpec {
	return SweepSpec{
		Ns: sc.Ns, Seeds: sc.Seeds, Base: base,
		Parallelism: sc.Par, SeedBase: seedBase, Progress: sc.Progress,
	}
}

func fprintFits(w io.Writer, label string, ns, ys []float64) {
	fits := stats.FitAll(ns, ys)
	fmt.Fprintf(w, "%s model fits (best RMSE first):\n", label)
	if len(fits) == 0 {
		fmt.Fprintf(w, "  (no fit: sweep needs >= 3 runs over distinct N)\n")
		return
	}
	for _, f := range fits {
		fmt.Fprintf(w, "  %s\n", f)
	}
	switch p, err := stats.PowerExponent(ns, ys); {
	case err == nil:
		fmt.Fprintf(w, "  free power-law exponent p = %.3f (polylog ⇒ p ≪ 0.5)\n", p)
	case errors.Is(err, stats.ErrDegenerate):
		fmt.Fprintf(w, "  power-law exponent unavailable: %v\n", err)
	}
}

// --- E1: Fig. 1 hierarchy example ---

// RenderHierarchy pretty-prints a hierarchy in the style of the
// paper's Fig. 1: one block per level listing each cluster and its
// members.
func RenderHierarchy(w io.Writer, h *cluster.Hierarchy) {
	for k := 0; k <= h.L(); k++ {
		lvl := h.Level(k)
		fmt.Fprintf(w, "level %d: %d nodes, %d links\n", k, len(lvl.Nodes), lvl.Graph.EdgeCount())
		if lvl.Members == nil {
			continue
		}
		heads := make([]int, 0, len(lvl.Members))
		for c := range lvl.Members {
			heads = append(heads, c)
		}
		sort.Ints(heads)
		for _, c := range heads {
			fmt.Fprintf(w, "  cluster %d: members %v (head state %d)\n", c, lvl.Members[c], lvl.State[c])
		}
	}
}

func runE1(w io.Writer, sc Scale) error {
	// A 30-node static network, like the paper's Fig. 1 scenario.
	h, _ := staticHierarchy(30, 42)
	fmt.Fprintln(w, "E1 (Fig. 1): recursive ALCA clustering of a 30-node network")
	RenderHierarchy(w, h)
	fmt.Fprintf(w, "levels built: %d (paper's example: 3)\n", h.L())
	if err := h.Validate(); err != nil {
		return err
	}
	// Show example hierarchical addresses like "100.85.37.63".
	nodes := h.LevelNodes(0)
	for i := 0; i < 3 && i < len(nodes); i++ {
		v := nodes[i*len(nodes)/3]
		fmt.Fprintf(w, "address of node %d: %v\n", v, h.AncestorChain(v))
	}
	return nil
}

// --- E2: Fig. 2 GLS grid ---

func runE2(w io.Writer, sc Scale) error {
	cfg := simnet.Config{N: 200, Seed: 7}
	region := cfg.Region()
	src := rng.NewRoot(7).Stream("static-layout")
	pos := make([]geom.Vec, 200)
	for i := range pos {
		pos[i] = region.Sample(src)
	}
	grid := gls.NewGrid(region, 100)
	idx := gls.NewIndex(grid, pos)
	v := 63 % len(pos)
	fmt.Fprintf(w, "E2 (Fig. 2): GLS grid hierarchy around node %d at %v\n", v, pos[v])
	for _, sq := range grid.Chain(pos[v]) {
		fmt.Fprintf(w, "  contained in %v\n", sq)
	}
	sa := idx.ServersFor(v, len(pos))
	for level, row := range sa.Servers {
		fmt.Fprintf(w, "  level-%d sibling servers: %v\n", level+1, row)
	}
	tbl := gls.BuildTable(idx, len(pos))
	load := tbl.Load()
	max, total := 0, 0
	//lint:ignore maprange commutative sum and max; the result is order-free
	for _, c := range load {
		total += c
		if c > max {
			max = c
		}
	}
	fmt.Fprintf(w, "server load: mean %.2f, max %d over %d nodes\n",
		float64(total)/float64(len(pos)), max, len(pos))
	return nil
}

// --- E3: Fig. 3 state dynamics ---

func runE3(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E3 (Fig. 3): ALCA state occupancy and transition step sizes")
	tw := NewTable("scan dt (s)", "transitions", "unit fraction", "P(state=1) L1", "mean state L1")
	for _, dt := range []float64{1.0, 0.5, 0.2, 0.1} {
		cfg := baseConfig(sc)
		cfg.N = sc.BigN
		cfg.Seed = 3
		cfg.ScanInterval = dt
		cfg.TrackStates = true
		r, err := simnet.Run(cfg)
		if err != nil {
			return err
		}
		frac, total := r.States.UnitTransitionFraction()
		p1, _ := r.States.P1(1)
		tw.Rowf(dt, total, frac, p1, r.States.MeanState(1))
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: transitions occur only between adjacent states in the continuous-time limit.")
	fmt.Fprintln(w, "CHECK: unit fraction → 1 as dt → 0.")
	return nil
}

// --- E4: Eq. 4, f0 constant ---

func runE4(w io.Writer, sc Scale) error {
	spec := sweepSpec(sc, baseConfig(sc), 400)
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintln(w, "E4 (Eq. 4): level-0 link state changes per node per second")
	tw := NewTable("N", "f0", "±95%", "giant")
	for _, r := range rows {
		tw.Rowf(r.N, r.F0.Mean(), r.F0.CI95(), r.Giant.Mean())
	}
	fmt.Fprint(w, tw.String())
	ns, ys := Series(rows, func(r *AggRow) float64 { return r.F0.Mean() })
	switch p, err := stats.PowerExponent(ns, ys); {
	case err == nil:
		fmt.Fprintf(w, "power-law exponent of f0(N): %.3f (paper: 0 — constant)\n", p)
	case errors.Is(err, stats.ErrDegenerate):
		fmt.Fprintf(w, "power-law exponent of f0(N) unavailable: %v\n", err)
	}
	return nil
}

// --- E5: Eq. 3, h_k = Θ(√c_k) ---

func runE5(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "E5 (Eq. 3): intra-cluster hop count h_k vs √c_k (static layouts)")
	tw := NewTable("N", "k", "c_k", "h_k", "h_k/√c_k")
	for _, n := range sc.Ns {
		h, g := staticHierarchy(n, uint64(500+n))
		scratch := topology.NewBFSScratch(g.IDSpace())
		src := rng.New(uint64(n))
		for k := 1; k <= h.L(); k++ {
			var acc stats.Welford
			clusters := h.LevelNodes(k)
			for tries := 0; tries < 400 && acc.N() < 120; tries++ {
				c := clusters[src.Intn(len(clusters))]
				desc := h.Descendants(k, c)
				if len(desc) < 2 {
					continue
				}
				a, b := desc[src.Intn(len(desc))], desc[src.Intn(len(desc))]
				if a == b {
					continue
				}
				in := map[int]bool{}
				for _, v := range desc {
					in[v] = true
				}
				if hops := scratch.HopCount(g, a, b, func(v int) bool { return in[v] }); hops > 0 {
					acc.Add(float64(hops))
				}
			}
			if acc.N() == 0 {
				continue
			}
			ck := h.Aggregation(k)
			tw.Rowf(n, k, ck, acc.Mean(), acc.Mean()/math.Sqrt(ck))
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: h_k/√c_k ≈ constant across levels and N.")
	return nil
}

// --- E6: Eq. 9, f_k = Θ(1/h_k) ---

func runE6(w io.Writer, sc Scale) error {
	base := baseConfig(sc)
	base.SampleHops = 25
	spec := sweepSpec(sc, base, 600)
	rows, errs := Aggregate(Sweep(spec))
	if len(errs) > 0 {
		return errs[0]
	}
	fmt.Fprintln(w, "E6 (Eqs. 8-9): level-k migration frequency f_k times h_k")
	tw := NewTable("N", "k", "f_k (mig/node/s)", "h_k", "f_k·h_k")
	for _, r := range rows {
		for k := 1; k < len(r.FMigByLevel); k++ {
			fk := r.FMigByLevel[k].Mean()
			hk := 0.0
			if k < len(r.HopByLevel) {
				hk = r.HopByLevel[k].Mean()
			}
			//lint:ignore floateq exact-zero sentinel for levels with no observations
			if fk == 0 || hk == 0 {
				continue
			}
			tw.Rowf(r.N, k, fk, hk, fk*hk)
		}
	}
	fmt.Fprint(w, tw.String())
	fmt.Fprintln(w, "PAPER: f_k·h_k ≈ constant across k (Eq. 9), so φ_k = O(log N).")
	return nil
}
