package manet_test

import (
	"fmt"

	manet "repro"
)

// ExampleRun shows the minimal simulation loop: configure, run, read
// the overhead rates. Determinism in the seed makes the assertion
// stable.
func ExampleRun() {
	r, err := manet.Run(manet.Config{N: 64, Seed: 1, Duration: 20, Warmup: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("overhead measured:", r.TotalRate() > 0)
	fmt.Println("hierarchy levels >= 2:", r.MeanLevels >= 2)
	// Output:
	// overhead measured: true
	// hierarchy levels >= 2: true
}

// ExampleExperiments lists the experiment registry.
func ExampleExperiments() {
	for _, e := range manet.Experiments()[:3] {
		fmt.Printf("%s: %s\n", e.ID, e.Paper)
	}
	// Output:
	// E1: Fig. 1
	// E2: Fig. 2
	// E3: Fig. 3
}
