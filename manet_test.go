package manet

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFacade(t *testing.T) {
	r, err := Run(Config{N: 64, Seed: 1, Duration: 20, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRate() <= 0 {
		t.Fatal("no overhead measured")
	}
}

func TestExperimentsRegistryExposed(t *testing.T) {
	exps := Experiments()
	if len(exps) < 18 {
		t.Fatalf("only %d experiments exposed", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E15", "A5"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment(&bytes.Buffer{}, "E99", QuickScale()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentProducesReport(t *testing.T) {
	var buf bytes.Buffer
	sc := Scale{Ns: []int{48}, Seeds: 1, Duration: 15, Warmup: 5, BigN: 48}
	if err := RunExperiment(&buf, "E1", sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 1") {
		t.Fatalf("E1 report missing figure reference:\n%s", buf.String())
	}
}

func TestScales(t *testing.T) {
	q, f := QuickScale(), FullScale()
	if len(q.Ns) == 0 || len(f.Ns) == 0 {
		t.Fatal("empty scales")
	}
	if f.Ns[len(f.Ns)-1] <= q.Ns[len(q.Ns)-1] {
		t.Fatal("full scale not larger than quick scale")
	}
}

func TestStabilizedConfigReducesOverhead(t *testing.T) {
	base := Config{N: 100, Seed: 5, Duration: 40, Warmup: 10}
	lit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	stab, err := Run(Stabilized(base))
	if err != nil {
		t.Fatal(err)
	}
	if stab.GammaRate >= lit.GammaRate {
		t.Fatalf("stabilized γ %v not below literal γ %v", stab.GammaRate, lit.GammaRate)
	}
}
