package manet

// One benchmark per reproduced artifact (figures Fig.1–Fig.3 and every
// numbered claim; see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark
// executes the corresponding experiment end-to-end at bench scale —
// `go test -bench=E15 -benchtime=1x` regenerates the headline result's
// machinery; `cmd/experiments -run E15` produces the full-scale report.

import (
	"io"
	"testing"
)

// benchScale keeps per-iteration cost bounded while still exercising
// the full pipeline.
func benchScale() Scale {
	return Scale{Ns: []int{48, 96}, Seeds: 1, Duration: 20, Warmup: 5, BigN: 96}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(io.Discard, id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 1: recursive ALCA hierarchy construction.
func BenchmarkE1_HierarchyBuild(b *testing.B) { benchExperiment(b, "E1") }

// Fig. 2: GLS grid hierarchy and server sets.
func BenchmarkE2_GLSServers(b *testing.B) { benchExperiment(b, "E2") }

// Fig. 3: ALCA state occupancy and unit transitions.
func BenchmarkE3_StateDynamics(b *testing.B) { benchExperiment(b, "E3") }

// Eq. 4: f0 = Θ(1).
func BenchmarkE4_LinkChangeRate(b *testing.B) { benchExperiment(b, "E4") }

// Eq. 3: h_k = Θ(√c_k).
func BenchmarkE5_HopScaling(b *testing.B) { benchExperiment(b, "E5") }

// Eqs. 8–9: f_k = Θ(1/h_k).
func BenchmarkE6_MigrationFreq(b *testing.B) { benchExperiment(b, "E6") }

// Eq. 6: φ(N) scaling.
func BenchmarkE7_MigrationOverhead(b *testing.B) { benchExperiment(b, "E7") }

// Eq. 14: g'_k = O(1/h_k).
func BenchmarkE8_ClusterLinkFreq(b *testing.B) { benchExperiment(b, "E8") }

// Eqs. 10–11: γ(N) scaling.
func BenchmarkE9_ReorgOverhead(b *testing.B) { benchExperiment(b, "E9") }

// §5.2: event classes i–vii breakdown.
func BenchmarkE10_EventBreakdown(b *testing.B) { benchExperiment(b, "E10") }

// Eq. 22: q1 estimation (the paper's future work).
func BenchmarkE11_Q1Estimate(b *testing.B) { benchExperiment(b, "E11") }

// Eq. 13: |E_k| = Θ(|V|/c_k).
func BenchmarkE12_LevelEdgeCount(b *testing.B) { benchExperiment(b, "E12") }

// §2.1: routing table reduction and stretch.
func BenchmarkE13_TableSize(b *testing.B) { benchExperiment(b, "E13") }

// §3: CHLM vs GLS maintenance traffic.
func BenchmarkE14_GLSCompare(b *testing.B) { benchExperiment(b, "E14") }

// Headline: total φ+γ vs N, both regimes.
func BenchmarkE15_TotalOverhead(b *testing.B) { benchExperiment(b, "E15") }

// Ablations.
func BenchmarkA1_ElectorLadder(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2_MaxMin(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3_HashFamily(b *testing.B)    { benchExperiment(b, "A3") }
func BenchmarkA4_NaiveNaming(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkA5_UncappedTop(b *testing.B)   { benchExperiment(b, "A5") }

// BenchmarkSimulationTick measures the cost of one full scan tick
// (mobility + topology + clustering + identity tracking + LM update +
// accounting) at N=512, the harness's inner loop.
func BenchmarkSimulationTick(b *testing.B) {
	// One long run amortizes setup; ticks dominate.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(Config{N: 512, Seed: 1, Duration: 50, Warmup: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Ticks), "ticks/run")
	}
}

// Motivation: measured flat-LM baselines vs the hierarchy.
func BenchmarkE16_FlatBaselines(b *testing.B) { benchExperiment(b, "E16") }

// §6: query cost absorbed into sessions.
func BenchmarkE17_QueryAbsorption(b *testing.B) { benchExperiment(b, "E17") }

// Extension: the node birth/death case the paper excluded.
func BenchmarkE18_Churn(b *testing.B) { benchExperiment(b, "E18") }

// Extension: entry-transfer latency through the message-level DES.
func BenchmarkE19_HandoffLatency(b *testing.B) { benchExperiment(b, "E19") }

// Ablation: group mobility (RPGM).
func BenchmarkA6_GroupMobility(b *testing.B) { benchExperiment(b, "A6") }
