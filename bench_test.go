package manet

// One benchmark per reproduced artifact (figures Fig.1–Fig.3 and every
// numbered claim; see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark
// executes the corresponding experiment end-to-end at bench scale —
// `go test -bench=E15 -benchtime=1x` regenerates the headline result's
// machinery; `cmd/experiments -run E15` produces the full-scale report.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/kinetic"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// benchScale keeps per-iteration cost bounded while still exercising
// the full pipeline.
func benchScale() Scale {
	return Scale{Ns: []int{48, 96}, Seeds: 1, Duration: 20, Warmup: 5, BigN: 96}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(io.Discard, id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 1: recursive ALCA hierarchy construction.
func BenchmarkE1_HierarchyBuild(b *testing.B) { benchExperiment(b, "E1") }

// Fig. 2: GLS grid hierarchy and server sets.
func BenchmarkE2_GLSServers(b *testing.B) { benchExperiment(b, "E2") }

// Fig. 3: ALCA state occupancy and unit transitions.
func BenchmarkE3_StateDynamics(b *testing.B) { benchExperiment(b, "E3") }

// Eq. 4: f0 = Θ(1).
func BenchmarkE4_LinkChangeRate(b *testing.B) { benchExperiment(b, "E4") }

// Eq. 3: h_k = Θ(√c_k).
func BenchmarkE5_HopScaling(b *testing.B) { benchExperiment(b, "E5") }

// Eqs. 8–9: f_k = Θ(1/h_k).
func BenchmarkE6_MigrationFreq(b *testing.B) { benchExperiment(b, "E6") }

// Eq. 6: φ(N) scaling.
func BenchmarkE7_MigrationOverhead(b *testing.B) { benchExperiment(b, "E7") }

// Eq. 14: g'_k = O(1/h_k).
func BenchmarkE8_ClusterLinkFreq(b *testing.B) { benchExperiment(b, "E8") }

// Eqs. 10–11: γ(N) scaling.
func BenchmarkE9_ReorgOverhead(b *testing.B) { benchExperiment(b, "E9") }

// §5.2: event classes i–vii breakdown.
func BenchmarkE10_EventBreakdown(b *testing.B) { benchExperiment(b, "E10") }

// Eq. 22: q1 estimation (the paper's future work).
func BenchmarkE11_Q1Estimate(b *testing.B) { benchExperiment(b, "E11") }

// Eq. 13: |E_k| = Θ(|V|/c_k).
func BenchmarkE12_LevelEdgeCount(b *testing.B) { benchExperiment(b, "E12") }

// §2.1: routing table reduction and stretch.
func BenchmarkE13_TableSize(b *testing.B) { benchExperiment(b, "E13") }

// §3: CHLM vs GLS maintenance traffic.
func BenchmarkE14_GLSCompare(b *testing.B) { benchExperiment(b, "E14") }

// Headline: total φ+γ vs N, both regimes.
func BenchmarkE15_TotalOverhead(b *testing.B) { benchExperiment(b, "E15") }

// Ablations.
func BenchmarkA1_ElectorLadder(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2_MaxMin(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3_HashFamily(b *testing.B)    { benchExperiment(b, "A3") }
func BenchmarkA4_NaiveNaming(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkA5_UncappedTop(b *testing.B)   { benchExperiment(b, "A5") }

// BenchmarkSimulationTick measures the cost of one full scan tick
// (mobility + topology + clustering + identity tracking + LM update +
// accounting) at N=512, the harness's inner loop.
func BenchmarkSimulationTick(b *testing.B) {
	// One long run amortizes setup; ticks dominate.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(Config{N: 512, Seed: 1, Duration: 50, Warmup: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Ticks), "ticks/run")
	}
}

// --- steady-state tick sub-benchmarks ---
//
// The scan tick is the simulator's inner loop; at production scale its
// cost is dominated by four stages: unit-disk graph rebuild, edge
// diffing, hierarchy (re)construction, and the incremental LM table
// update. Each stage is benchmarked in a "fresh" variant (allocate
// everything per tick, the pre-optimization behavior) and a "reuse"
// variant (the double-buffered scratch/arena path simnet.Run actually
// takes), so the allocation reduction is visible in one `-benchmem`
// run. scripts/bench.sh records these into BENCH_<date>.json.

// tickFixture is two consecutive simulation snapshots at N nodes, one
// scan interval apart, plus the live spatial grid at the later scan.
type tickFixture struct {
	n          int
	rtx        float64
	pos0, pos1 []geom.Vec
	grid       *spatial.Grid
	g0, g1     *topology.Graph
	cfg        cluster.Config
	tracker    *cluster.IdentityTracker
	h0, h1     *cluster.Hierarchy
	ids0, ids1 *cluster.Identities
	sel        *lm.Selector
	t0         *lm.Table
	nodes      []int
}

func newTickFixture(n int) *tickFixture {
	f := &tickFixture{n: n, rtx: 100}
	simCfg := simnet.Config{N: n, Seed: 99}
	region := simCfg.Region()
	root := rng.NewRoot(99)
	model := mobility.NewWaypoint(region, 10, root.Stream("mobility"))
	f.pos0 = model.Init(n)
	f.pos0 = append([]geom.Vec(nil), f.pos0...)
	model.AdvanceTo(1.0, model.Init(n)) // discard; keep fixture simple
	// Rebuild model deterministically for the advanced snapshot.
	model2 := mobility.NewWaypoint(region, 10, rng.NewRoot(99).Stream("mobility"))
	f.pos1 = model2.Init(n)
	model2.AdvanceTo(1.0, f.pos1)

	f.grid = spatial.NewGridForDisc(region, f.rtx, n)
	for i, p := range f.pos0 {
		f.grid.Insert(i, p)
	}
	f.g0 = topology.BuildUnitDisk(n, f.pos0, f.rtx, f.grid)
	f.nodes = make([]int, n)
	for i := range f.nodes {
		f.nodes[i] = i
	}
	f.cfg = cluster.Config{ForceTopAt: 12}
	f.tracker = cluster.NewIdentityTracker()
	f.h0, f.ids0 = cluster.BuildWithIdentities(
		f.g0, topology.GiantComponent(f.g0, f.nodes), f.cfg, nil, nil, f.tracker, 0)
	f.sel = lm.NewSelector(nil)
	f.t0 = f.sel.BuildTable(f.h0, f.ids0)

	for i, p := range f.pos1 {
		f.grid.Update(i, p)
	}
	f.g1 = topology.BuildUnitDisk(n, f.pos1, f.rtx, f.grid)
	f.h1, f.ids1 = cluster.BuildWithIdentities(
		f.g1, topology.GiantComponent(f.g1, f.nodes), f.cfg, f.h0, f.ids0, f.tracker, 1)
	return f
}

const tickN = 512

func BenchmarkTickGraphRebuild(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topology.BuildUnitDisk(f.n, f.pos1, f.rtx, f.grid)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var spare *topology.Graph
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spare = topology.BuildUnitDiskInto(spare, f.n, f.pos1, f.rtx, f.grid)
		}
	})
	// One worker per available core; on a single-core host this takes
	// the serial fallback, so /par == /reuse there.
	b.Run("par", func(b *testing.B) {
		p := par.NewPool(runtime.GOMAXPROCS(0))
		defer p.Close()
		var spare *topology.Graph
		var sc topology.BuildScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spare = topology.BuildUnitDiskIntoPar(spare, f.n, f.pos1, f.rtx, f.grid, p, &sc)
		}
	})
}

func BenchmarkTickDiff(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topology.DiffEdges(f.g0, f.g1)
			cluster.ComputeDiff(f.h0, f.h1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var es topology.DiffScratch
		var cs cluster.DiffScratch
		var d *cluster.Diff
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			es.Diff(f.g0, f.g1)
			d = cluster.ComputeDiffInto(d, f.h0, f.h1, &cs)
		}
	})
}

func BenchmarkTickHierarchy(b *testing.B) {
	f := newTickFixture(tickN)
	giant := topology.GiantComponent(f.g1, f.nodes)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster.BuildWithIdentities(f.g1, giant, f.cfg, f.h0, f.ids0, f.tracker, 1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		a := cluster.NewArena()
		var rh *cluster.Hierarchy
		var rids *cluster.Identities
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Recycle(rh, rids)
			rh, rids = cluster.BuildWithIdentitiesArena(
				a, f.g1, giant, f.cfg, f.h0, f.ids0, f.tracker, 1)
		}
	})
}

func BenchmarkTickLMUpdate(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.sel.UpdateTable(f.t0, f.h0, f.ids0, f.h1, f.ids1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var sc lm.UpdateScratch
		var dst *lm.Table
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = f.sel.UpdateTableInto(dst, &sc, f.t0, f.h0, f.ids0, f.h1, f.ids1)
		}
	})
	b.Run("par", func(b *testing.B) {
		p := par.NewPool(runtime.GOMAXPROCS(0))
		defer p.Close()
		var sc lm.UpdateScratch
		var psc lm.UpdateParScratch
		var dst *lm.Table
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = f.sel.UpdateTableIntoPar(dst, &sc, &psc, f.t0, f.h0, f.ids0, f.h1, f.ids1, p)
		}
	})
}

// BenchmarkTickLinkMaintain compares the two link engines' topology
// maintenance: "scan" is the per-tick full grid rescan
// (BuildUnitDiskInto), "kinetic" the event-driven tracker (advance +
// event drain + graph materialization). The matrix varies the scan
// interval at fixed mobility: the scan's cost per simulated second is
// proportional to the tick rate (N work per tick regardless of what
// changed), while the kinetic engine's cost tracks the link/cell/
// segment event rate — per-event, not per-N×ticks — as its
// events/tick metric shows. The µs/simsec metric is the comparable
// figure across intervals; the engines cross over as the interval
// shrinks.
func BenchmarkTickLinkMaintain(b *testing.B) {
	const rtx, mu = 100.0, 10.0
	n := tickN
	region := simnet.Config{N: n, Seed: 99}.Region()
	for _, interval := range []float64{1.0, 0.2} {
		b.Run(fmt.Sprintf("scan/interval=%v", interval), func(b *testing.B) {
			model := mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
			pos := model.Init(n)
			grid := spatial.NewGridForDisc(region, rtx, n)
			for i, p := range pos {
				grid.Insert(i, p)
			}
			var g *topology.Graph
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := float64(i+1) * interval
				model.AdvanceTo(t, pos)
				for j, p := range pos {
					grid.Update(j, p)
				}
				g = topology.BuildUnitDiskInto(g, n, pos, rtx, grid)
			}
			b.StopTimer()
			_ = g
			b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
		})
		b.Run(fmt.Sprintf("kinetic/interval=%v", interval), func(b *testing.B) {
			model := mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
			pos := model.Init(n)
			grid := spatial.NewGridForDisc(region, rtx, n)
			for i, p := range pos {
				grid.Insert(i, p)
			}
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			tr := kinetic.New(model, grid, pos, alive, rtx, interval)
			tr.Seed(topology.BuildUnitDisk(n, pos, rtx, grid))
			var g *topology.Graph
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := float64(i+1) * interval
				model.AdvanceTo(t, pos)
				tr.BeginTick(t)
				tr.Advance(t)
				g = tr.GraphInto(g)
			}
			b.StopTimer()
			_ = g
			st := tr.Stats
			b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
			b.ReportMetric(float64(st.Attention+st.Rechecks)/float64(b.N), "events/tick")
			b.ReportMetric(float64(st.Exams)/float64(b.N), "exams/tick")
		})
	}
}

// Motivation: measured flat-LM baselines vs the hierarchy.
func BenchmarkE16_FlatBaselines(b *testing.B) { benchExperiment(b, "E16") }

// §6: query cost absorbed into sessions.
func BenchmarkE17_QueryAbsorption(b *testing.B) { benchExperiment(b, "E17") }

// Extension: the node birth/death case the paper excluded.
func BenchmarkE18_Churn(b *testing.B) { benchExperiment(b, "E18") }

// Extension: entry-transfer latency through the message-level DES.
func BenchmarkE19_HandoffLatency(b *testing.B) { benchExperiment(b, "E19") }

// Ablation: group mobility (RPGM).
func BenchmarkA6_GroupMobility(b *testing.B) { benchExperiment(b, "A6") }
