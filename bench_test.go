package manet

// One benchmark per reproduced artifact (figures Fig.1–Fig.3 and every
// numbered claim; see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark
// executes the corresponding experiment end-to-end at bench scale —
// `go test -bench=E15 -benchtime=1x` regenerates the headline result's
// machinery; `cmd/experiments -run E15` produces the full-scale report.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/kinetic"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// benchScale keeps per-iteration cost bounded while still exercising
// the full pipeline.
func benchScale() Scale {
	return Scale{Ns: []int{48, 96}, Seeds: 1, Duration: 20, Warmup: 5, BigN: 96}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(io.Discard, id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 1: recursive ALCA hierarchy construction.
func BenchmarkE1_HierarchyBuild(b *testing.B) { benchExperiment(b, "E1") }

// Fig. 2: GLS grid hierarchy and server sets.
func BenchmarkE2_GLSServers(b *testing.B) { benchExperiment(b, "E2") }

// Fig. 3: ALCA state occupancy and unit transitions.
func BenchmarkE3_StateDynamics(b *testing.B) { benchExperiment(b, "E3") }

// Eq. 4: f0 = Θ(1).
func BenchmarkE4_LinkChangeRate(b *testing.B) { benchExperiment(b, "E4") }

// Eq. 3: h_k = Θ(√c_k).
func BenchmarkE5_HopScaling(b *testing.B) { benchExperiment(b, "E5") }

// Eqs. 8–9: f_k = Θ(1/h_k).
func BenchmarkE6_MigrationFreq(b *testing.B) { benchExperiment(b, "E6") }

// Eq. 6: φ(N) scaling.
func BenchmarkE7_MigrationOverhead(b *testing.B) { benchExperiment(b, "E7") }

// Eq. 14: g'_k = O(1/h_k).
func BenchmarkE8_ClusterLinkFreq(b *testing.B) { benchExperiment(b, "E8") }

// Eqs. 10–11: γ(N) scaling.
func BenchmarkE9_ReorgOverhead(b *testing.B) { benchExperiment(b, "E9") }

// §5.2: event classes i–vii breakdown.
func BenchmarkE10_EventBreakdown(b *testing.B) { benchExperiment(b, "E10") }

// Eq. 22: q1 estimation (the paper's future work).
func BenchmarkE11_Q1Estimate(b *testing.B) { benchExperiment(b, "E11") }

// Eq. 13: |E_k| = Θ(|V|/c_k).
func BenchmarkE12_LevelEdgeCount(b *testing.B) { benchExperiment(b, "E12") }

// §2.1: routing table reduction and stretch.
func BenchmarkE13_TableSize(b *testing.B) { benchExperiment(b, "E13") }

// §3: CHLM vs GLS maintenance traffic.
func BenchmarkE14_GLSCompare(b *testing.B) { benchExperiment(b, "E14") }

// Headline: total φ+γ vs N, both regimes.
func BenchmarkE15_TotalOverhead(b *testing.B) { benchExperiment(b, "E15") }

// Ablations.
func BenchmarkA1_ElectorLadder(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2_MaxMin(b *testing.B)        { benchExperiment(b, "A2") }
func BenchmarkA3_HashFamily(b *testing.B)    { benchExperiment(b, "A3") }
func BenchmarkA4_NaiveNaming(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkA5_UncappedTop(b *testing.B)   { benchExperiment(b, "A5") }

// BenchmarkSimulationTick measures the cost of one full scan tick
// (mobility + topology + clustering + identity tracking + LM update +
// accounting) at N=512, the harness's inner loop.
func BenchmarkSimulationTick(b *testing.B) {
	// One long run amortizes setup; ticks dominate.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(Config{N: 512, Seed: 1, Duration: 50, Warmup: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Ticks), "ticks/run")
	}
}

// --- steady-state tick sub-benchmarks ---
//
// The scan tick is the simulator's inner loop; at production scale its
// cost is dominated by four stages: unit-disk graph rebuild, edge
// diffing, hierarchy (re)construction, and the incremental LM table
// update. Each stage is benchmarked in a "fresh" variant (allocate
// everything per tick, the pre-optimization behavior) and a "reuse"
// variant (the double-buffered scratch/arena path simnet.Run actually
// takes), so the allocation reduction is visible in one `-benchmem`
// run. scripts/bench.sh records these into BENCH_<date>.json.

// tickFixture is two consecutive simulation snapshots at N nodes, one
// scan interval apart, plus the live spatial grid at the later scan.
type tickFixture struct {
	n          int
	rtx        float64
	pos0, pos1 []geom.Vec
	grid       *spatial.Grid
	g0, g1     *topology.Graph
	cfg        cluster.Config
	tracker    *cluster.IdentityTracker
	h0, h1     *cluster.Hierarchy
	ids0, ids1 *cluster.Identities
	sel        *lm.Selector
	t0         *lm.Table
	nodes      []int
}

func newTickFixture(n int) *tickFixture {
	f := &tickFixture{n: n, rtx: 100}
	simCfg := simnet.Config{N: n, Seed: 99}
	region := simCfg.Region()
	root := rng.NewRoot(99)
	model := mobility.NewWaypoint(region, 10, root.Stream("mobility"))
	f.pos0 = model.Init(n)
	f.pos0 = append([]geom.Vec(nil), f.pos0...)
	model.AdvanceTo(1.0, model.Init(n)) // discard; keep fixture simple
	// Rebuild model deterministically for the advanced snapshot.
	model2 := mobility.NewWaypoint(region, 10, rng.NewRoot(99).Stream("mobility"))
	f.pos1 = model2.Init(n)
	model2.AdvanceTo(1.0, f.pos1)

	f.grid = spatial.NewGridForDisc(region, f.rtx, n)
	for i, p := range f.pos0 {
		f.grid.Insert(i, p)
	}
	f.g0 = topology.BuildUnitDisk(n, f.pos0, f.rtx, f.grid)
	f.nodes = make([]int, n)
	for i := range f.nodes {
		f.nodes[i] = i
	}
	f.cfg = cluster.Config{ForceTopAt: 12}
	f.tracker = cluster.NewIdentityTracker()
	f.h0, f.ids0 = cluster.BuildWithIdentities(
		f.g0, topology.GiantComponent(f.g0, f.nodes), f.cfg, nil, nil, f.tracker, 0)
	f.sel = lm.NewSelector(nil)
	f.t0 = f.sel.BuildTable(f.h0, f.ids0)

	for i, p := range f.pos1 {
		f.grid.Update(i, p)
	}
	f.g1 = topology.BuildUnitDisk(n, f.pos1, f.rtx, f.grid)
	f.h1, f.ids1 = cluster.BuildWithIdentities(
		f.g1, topology.GiantComponent(f.g1, f.nodes), f.cfg, f.h0, f.ids0, f.tracker, 1)
	return f
}

const tickN = 512

func BenchmarkTickGraphRebuild(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topology.BuildUnitDisk(f.n, f.pos1, f.rtx, f.grid)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var spare *topology.Graph
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spare = topology.BuildUnitDiskInto(spare, f.n, f.pos1, f.rtx, f.grid)
		}
	})
	// One worker per available core; on a single-core host this takes
	// the serial fallback, so /par == /reuse there.
	b.Run("par", func(b *testing.B) {
		p := par.NewPool(runtime.GOMAXPROCS(0))
		defer p.Close()
		var spare *topology.Graph
		var sc topology.BuildScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spare = topology.BuildUnitDiskIntoPar(spare, f.n, f.pos1, f.rtx, f.grid, p, &sc)
		}
	})
}

func BenchmarkTickDiff(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topology.DiffEdges(f.g0, f.g1)
			cluster.ComputeDiff(f.h0, f.h1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var es topology.DiffScratch
		var cs cluster.DiffScratch
		var d *cluster.Diff
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			es.Diff(f.g0, f.g1)
			d = cluster.ComputeDiffInto(d, f.h0, f.h1, &cs)
		}
	})
}

func BenchmarkTickHierarchy(b *testing.B) {
	f := newTickFixture(tickN)
	giant := topology.GiantComponent(f.g1, f.nodes)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster.BuildWithIdentities(f.g1, giant, f.cfg, f.h0, f.ids0, f.tracker, 1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		a := cluster.NewArena()
		var rh *cluster.Hierarchy
		var rids *cluster.Identities
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Recycle(rh, rids)
			rh, rids = cluster.BuildWithIdentitiesArena(
				a, f.g1, giant, f.cfg, f.h0, f.ids0, f.tracker, 1)
		}
	})
}

// maintainWorld drives a steady-state scan world at a fixed interval
// for the maintenance benchmarks: each advance() moves mobility one
// interval, rebuilds the unit-disk graph into the retired t-2 buffer,
// and diffs the link events; each maintain() runs the tick's
// hierarchy-maintenance phase (the tick.cluster span: retire t-2,
// giant component, Maintain) through the configured Maintainer. The
// split lets benchmarks time the maintenance phase alone while the
// world advances off the clock.
type maintainWorld struct {
	n, tick       int
	rtx, interval float64
	model         *mobility.Waypoint
	pos           []geom.Vec
	grid          *spatial.Grid
	nodes         []int
	ls            topology.DiffScratch
	giantScr      topology.ComponentScratch
	mnt           cluster.Maintainer

	prevG, g, ng *topology.Graph
	events       []topology.LinkEvent
	prevH, h     *cluster.Hierarchy
	prevIDs, ids *cluster.Identities
	in           cluster.MaintainInput
}

func newMaintainWorld(n int, interval float64,
	mk func(cluster.Config, *cluster.IdentityTracker) cluster.Maintainer) *maintainWorld {
	const rtx, mu = 100.0, 10.0
	region := simnet.Config{N: n, Seed: 99}.Region()
	w := &maintainWorld{n: n, rtx: rtx, interval: interval}
	w.model = mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
	w.pos = w.model.Init(n)
	w.grid = spatial.NewGridForDisc(region, rtx, n)
	for i, p := range w.pos {
		w.grid.Insert(i, p)
	}
	w.nodes = make([]int, n)
	for i := range w.nodes {
		w.nodes[i] = i
	}
	w.mnt = mk(cluster.Config{ForceTopAt: 12}, cluster.NewIdentityTracker())
	w.g = topology.BuildUnitDisk(n, w.pos, rtx, w.grid)
	w.in = cluster.MaintainInput{G0: w.g, Nodes: w.giantScr.Giant(w.g, w.nodes)}
	w.h, w.ids = w.mnt.Maintain(&w.in)
	// Settle into steady state before measurement: the first ticks pay
	// cold-start costs (initial full build, scratch growth, early
	// hierarchy shake-out) that a long-running simulation amortizes away.
	for i := 0; i < 25; i++ {
		w.advance()
		w.maintain()
	}
	return w
}

// advance prepares the next tick's MaintainInput: mobility, grid,
// graph rebuild (into the retired t-2 buffer), link-event diff, and
// the giant-component cover. All of it is strategy-independent input
// prep, so the maintenance benchmarks run it off the clock.
func (w *maintainWorld) advance() {
	w.tick++
	t := float64(w.tick) * w.interval
	w.model.AdvanceTo(t, w.pos)
	for j, p := range w.pos {
		w.grid.Update(j, p)
	}
	w.ng = topology.BuildUnitDiskInto(w.prevG, w.n, w.pos, w.rtx, w.grid)
	w.events = w.ls.Diff(w.g, w.ng)
	w.in = cluster.MaintainInput{
		G0: w.ng, PrevG0: w.g, Nodes: w.giantScr.Giant(w.ng, w.nodes),
		Events: w.events, PrevH: w.h, PrevIDs: w.ids, Now: t,
	}
}

// maintain runs the strategy under test: retire the t-2 snapshot and
// Maintain the new one from the prepared input.
func (w *maintainWorld) maintain() {
	w.mnt.Retire(w.prevH, w.prevIDs)
	nh, nids := w.mnt.Maintain(&w.in)
	w.prevG, w.g = w.g, w.ng
	w.prevH, w.prevIDs, w.h, w.ids = w.h, w.ids, nh, nids
}

var benchMaintainers = []struct {
	name string
	mk   func(cluster.Config, *cluster.IdentityTracker) cluster.Maintainer
}{
	{"oracle", func(cfg cluster.Config, tr *cluster.IdentityTracker) cluster.Maintainer {
		return cluster.NewOracleMaintainer(cfg, tr)
	}},
	{"incremental", func(cfg cluster.Config, tr *cluster.IdentityTracker) cluster.Maintainer {
		return cluster.NewIncrementalMaintainer(cfg, tr)
	}},
}

// BenchmarkTickClusterMaintain compares the two hierarchy-maintenance
// strategies on a live steady-state world: "oracle" rebuilds the full
// ALCA fixed point every tick (Θ(N·L) regardless of churn), while
// "incremental" patches the previous snapshot by the tick's link-event
// delta, so its cost tracks the event rate. The matrix varies the scan
// interval at fixed speed (Mu=10): shorter intervals mean less churn
// per tick, which shrinks the incremental cost but not the oracle's.
// Only the maintenance phase (retire + giant component + Maintain) is
// timed; mobility/graph/diff run off the clock. µs/simsec is the
// comparable figure across intervals; fastpath is the fraction of
// Maintains served by the incremental fast path.
func BenchmarkTickClusterMaintain(b *testing.B) {
	for _, interval := range []float64{1.0, 0.2, 0.1} {
		for _, m := range benchMaintainers {
			b.Run(fmt.Sprintf("%s/interval=%v", m.name, interval), func(b *testing.B) {
				w := newMaintainWorld(tickN, interval, m.mk)
				var st0 cluster.IncrementalStats
				im, isInc := w.mnt.(*cluster.IncrementalMaintainer)
				if isInc {
					st0 = im.Stats()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w.advance()
					b.StartTimer()
					w.maintain()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
				if isInc {
					st := im.Stats()
					inc := st.Incremental - st0.Incremental
					fb := st.Fallbacks - st0.Fallbacks
					b.ReportMetric(float64(inc)/float64(inc+fb), "fastpath")
				}
			})
		}
	}
}

func BenchmarkTickLMUpdate(b *testing.B) {
	f := newTickFixture(tickN)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.sel.UpdateTable(f.t0, f.h0, f.ids0, f.h1, f.ids1)
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var sc lm.UpdateScratch
		var dst *lm.Table
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = f.sel.UpdateTableInto(dst, &sc, f.t0, f.h0, f.ids0, f.h1, f.ids1, nil)
		}
	})
	b.Run("par", func(b *testing.B) {
		p := par.NewPool(runtime.GOMAXPROCS(0))
		defer p.Close()
		var sc lm.UpdateScratch
		var psc lm.UpdateParScratch
		var dst *lm.Table
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = f.sel.UpdateTableIntoPar(dst, &sc, &psc, f.t0, f.h0, f.ids0, f.h1, f.ids1, nil, p)
		}
	})

	// Low-churn legs: on a live world at interval=0.1s (Mu=10) the
	// per-tick delta touches only a handful of owners, so the dirty-row
	// update — clean rows copied wholesale, dirty rows recomputed — is
	// compared against the from-scratch oracle (BuildTable every tick)
	// on the same snapshot stream. "incremental" consumes the
	// maintainer-exported dirty set; "self" proves the owner analysis
	// pays for itself even when the LM must recompute the dirty set
	// from the snapshot pair (oracle maintainer, known == nil).
	const lowChurn = 0.1
	runLowChurn := func(b *testing.B, known bool, update func(w *maintainWorld, sel *lm.Selector)) {
		w := newMaintainWorld(tickN, lowChurn, benchMaintainers[1].mk)
		sel := lm.NewSelector(nil)
		var sc lm.UpdateScratch
		var t0, spare *lm.Table
		if update == nil {
			// Dirty-row update: each tick patches the previous table by
			// the dirty set (maintainer-exported when known, recomputed
			// from the snapshot pair otherwise), double-buffered exactly
			// like the simulation loop.
			t0 = sel.BuildTable(w.h, w.ids)
			update = func(w *maintainWorld, sel *lm.Selector) {
				var dirty *cluster.DirtyClusters
				if known {
					dirty = w.mnt.DirtyClusters()
				}
				nt := sel.UpdateTableInto(spare, &sc, t0,
					w.prevH, w.prevIDs, w.h, w.ids, dirty)
				spare, t0 = t0, nt
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.advance()
			w.maintain()
			b.StartTimer()
			update(w, sel)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*lowChurn), "µs/simsec")
	}
	b.Run("lowchurn/oracle", func(b *testing.B) {
		runLowChurn(b, false, func(w *maintainWorld, sel *lm.Selector) {
			sel.BuildTable(w.h, w.ids)
		})
	})
	b.Run("lowchurn/incremental", func(b *testing.B) {
		runLowChurn(b, true, nil)
	})
	b.Run("lowchurn/self", func(b *testing.B) {
		runLowChurn(b, false, nil)
	})
}

// BenchmarkTickLinkMaintain compares the two link engines' topology
// maintenance: "scan" is the per-tick full grid rescan
// (BuildUnitDiskInto), "kinetic" the event-driven tracker (advance +
// event drain + graph materialization). The matrix varies the scan
// interval at fixed mobility: the scan's cost per simulated second is
// proportional to the tick rate (N work per tick regardless of what
// changed), while the kinetic engine's cost tracks the link/cell/
// segment event rate — per-event, not per-N×ticks — as its
// events/tick metric shows. The µs/simsec metric is the comparable
// figure across intervals; the engines cross over as the interval
// shrinks.
func BenchmarkTickLinkMaintain(b *testing.B) {
	const rtx, mu = 100.0, 10.0
	n := tickN
	region := simnet.Config{N: n, Seed: 99}.Region()
	for _, interval := range []float64{1.0, 0.2} {
		b.Run(fmt.Sprintf("scan/interval=%v", interval), func(b *testing.B) {
			model := mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
			pos := model.Init(n)
			grid := spatial.NewGridForDisc(region, rtx, n)
			for i, p := range pos {
				grid.Insert(i, p)
			}
			var g *topology.Graph
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := float64(i+1) * interval
				model.AdvanceTo(t, pos)
				for j, p := range pos {
					grid.Update(j, p)
				}
				g = topology.BuildUnitDiskInto(g, n, pos, rtx, grid)
			}
			b.StopTimer()
			_ = g
			b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
		})
		b.Run(fmt.Sprintf("kinetic/interval=%v", interval), func(b *testing.B) {
			model := mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
			pos := model.Init(n)
			grid := spatial.NewGridForDisc(region, rtx, n)
			for i, p := range pos {
				grid.Insert(i, p)
			}
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = true
			}
			tr := kinetic.New(model, grid, pos, alive, rtx, interval)
			tr.Seed(topology.BuildUnitDisk(n, pos, rtx, grid))
			var g *topology.Graph
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := float64(i+1) * interval
				model.AdvanceTo(t, pos)
				tr.BeginTick(t)
				tr.Advance(t)
				g = tr.GraphInto(g)
			}
			b.StopTimer()
			_ = g
			st := tr.Stats
			b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
			b.ReportMetric(float64(st.Attention+st.Rechecks)/float64(b.N), "events/tick")
			b.ReportMetric(float64(st.Exams)/float64(b.N), "exams/tick")
		})
	}
}

// BenchmarkBuildLinks compares the per-scan rebuild cost of the link
// models through the LinkModel interface, under live waypoint motion.
// The unit-disk build is the pure grid pair scan; logshadow adds the
// per-candidate shadowing draw + hysteresis predicate AND widens the
// candidate radius to the worst-case break distance (≈3σ + M/2 dB of
// extra range), so its µs/simsec figure prices the lossy radio's
// whole overhead, not just the predicate. The serial/par legs pin the
// sharded stateful build's cost alongside its byte-identity tests.
func BenchmarkBuildLinks(b *testing.B) {
	const rtx, mu, interval = 100.0, 10.0, 1.0
	n := tickN
	region := simnet.Config{N: n, Seed: 99}.Region()
	models := []struct {
		name string
		mk   func() topology.LinkModel
	}{
		{"unitdisk", func() topology.LinkModel { return topology.NewUnitDisk(rtx) }},
		{"logshadow", func() topology.LinkModel { return topology.NewLogShadow(rtx, 3, 4, 3, 99) }},
	}
	for _, tc := range models {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("%s/serial", tc.name)
			var pool *par.Pool
			if workers > 1 {
				name = fmt.Sprintf("%s/par", tc.name)
				pool = par.NewPool(workers)
			}
			b.Run(name, func(b *testing.B) {
				link := tc.mk()
				model := mobility.NewWaypoint(region, mu, rng.NewRoot(99).Stream("mobility"))
				pos := model.Init(n)
				grid := spatial.NewGridForDisc(region, rtx, n)
				for i, p := range pos {
					grid.Insert(i, p)
				}
				var g *topology.Graph
				var sc topology.BuildScratch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t := float64(i+1) * interval
					model.AdvanceTo(t, pos)
					for j, p := range pos {
						grid.Update(j, p)
					}
					g = link.BuildInto(g, n, pos, grid, pool, &sc)
				}
				b.StopTimer()
				_ = g
				b.ReportMetric(float64(b.Elapsed().Microseconds())/(float64(b.N)*interval), "µs/simsec")
			})
			pool.Close()
		}
	}
}

// Motivation: measured flat-LM baselines vs the hierarchy.
func BenchmarkE16_FlatBaselines(b *testing.B) { benchExperiment(b, "E16") }

// §6: query cost absorbed into sessions.
func BenchmarkE17_QueryAbsorption(b *testing.B) { benchExperiment(b, "E17") }

// Extension: the node birth/death case the paper excluded.
func BenchmarkE18_Churn(b *testing.B) { benchExperiment(b, "E18") }

// Extension: entry-transfer latency through the message-level DES.
func BenchmarkE19_HandoffLatency(b *testing.B) { benchExperiment(b, "E19") }

// Ablation: group mobility (RPGM).
func BenchmarkA6_GroupMobility(b *testing.B) { benchExperiment(b, "A6") }
