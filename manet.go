// Package manet is the public API of this repository: a discrete-event
// simulator and benchmark harness reproducing Sucec & Marsic,
// "Location Management Handoff Overhead in Hierarchically Organized
// Mobile Ad hoc Networks" (IPPS 2002).
//
// The paper proves that in a MANET organized into an L = Θ(log|V|)
// level clustered hierarchy, the control traffic caused by handing off
// distributed location-management (LM) state — triggered both by node
// migration (φ) and by cluster reorganization (γ) — is only
// Θ(log²|V|) packet transmissions per node per second. This module
// implements the full stack the argument rests on:
//
//   - random-waypoint mobility over a fixed-density disc (§1.2),
//   - the unit-disk link model and dynamic topology maintenance,
//   - recursive ALCA clustering (§2) with max-min d-hop and
//     hysteresis variants,
//   - CHLM location management (§3.2) with rendezvous hashing plus the
//     GLS baseline of §3.1,
//   - strict hierarchical routing (§2.1),
//   - the handoff accountant implementing the §4/§5 taxonomy, and
//   - the experiment harness regenerating every figure and validating
//     every numbered claim (see DESIGN.md and EXPERIMENTS.md).
//
// # Quick start
//
//	r, err := manet.Run(manet.Config{N: 256, Seed: 1, Duration: 120})
//	if err != nil { ... }
//	fmt.Printf("φ=%.3f γ=%.3f pkts/node/s\n", r.PhiRate, r.GammaRate)
//
// Experiments from the paper are available by ID:
//
//	manet.RunExperiment(os.Stdout, "E15", manet.QuickScale())
package manet

import (
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/simnet"
)

// Config parameterizes one simulation run. See simnet.Config for field
// documentation; the zero value of every optional field selects a
// sensible default (R_TX = 100 m, mean degree 9, μ = 10 m/s, random
// waypoint mobility).
type Config = simnet.Config

// Results carries the measured overhead rates and hierarchy structure
// of one run.
type Results = simnet.Results

// Mobility, link-model, and hop-model selector constants.
const (
	MobilityWaypoint    = simnet.MobilityWaypoint
	MobilityDirection   = simnet.MobilityDirection
	MobilityStatic      = simnet.MobilityStatic
	MobilityGroup       = simnet.MobilityGroup
	MobilityGaussMarkov = simnet.MobilityGaussMarkov
	MobilityManhattan   = simnet.MobilityManhattan
	MobilityHotspot     = simnet.MobilityHotspot
	LinkUnitDisk        = simnet.LinkUnitDisk
	LinkLogShadow       = simnet.LinkLogShadow
	HopEuclidean        = simnet.HopEuclidean
	HopBFS              = simnet.HopBFS
)

// MobilityModels lists the registered mobility model names in canonical
// order; LinkModels likewise for link models. Every name is a valid
// Config.Mobility / Config.Link value.
func MobilityModels() []string { return simnet.MobilityModels() }

// LinkModels lists the registered link model names in canonical order.
func LinkModels() []string { return simnet.LinkModels() }

// Run executes one simulation.
func Run(cfg Config) (*Results, error) { return simnet.Run(cfg) }

// Stabilized returns cfg with the full clustering-stabilization stack
// applied (LCC-style debounced elections with level-scaled grace, on
// top of the always-on identity continuity and forced-top cap) — the
// regime in which the paper's event-frequency premises hold best. The
// zero configuration runs the paper's literal memoryless ALCA instead;
// experiment E15 contrasts the two.
func Stabilized(cfg Config) Config { return runner.StabilizedConfig(cfg) }

// Experiment is one entry of the reproduction harness (a figure or a
// numbered claim of the paper; see DESIGN.md §4).
type Experiment = runner.Experiment

// Scale sizes experiment runs.
type Scale = runner.Scale

// QuickScale returns the smoke-test scale (seconds per experiment).
func QuickScale() Scale { return runner.QuickScale() }

// FullScale returns the publication scale (minutes per experiment).
func FullScale() Scale { return runner.FullScale() }

// Experiments lists the full registry in DESIGN.md order.
func Experiments() []Experiment { return runner.Registry() }

// RunExperiment executes one experiment by ID ("E1".."E15", "A1".."A3")
// writing its report to w.
func RunExperiment(w io.Writer, id string, sc Scale) error {
	e, ok := runner.Find(id)
	if !ok {
		return fmt.Errorf("manet: unknown experiment %q", id)
	}
	return e.Run(w, sc)
}

// RunAllExperiments executes the whole registry in order, separating
// reports with a header line; the first error aborts.
func RunAllExperiments(w io.Writer, sc Scale) error {
	for _, e := range runner.Registry() {
		fmt.Fprintf(w, "\n===== %s — %s (%s) =====\n", e.ID, e.Title, e.Paper)
		if err := e.Run(w, sc); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
