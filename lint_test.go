package manet_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/lint"
)

// TestManetlintClean makes the static gates part of tier-1
// verification: `go test ./...` fails if any package in the module
// violates an invariant the internal/lint analyzer suite enforces
// (map-order-dependent iteration, stray randomness or wall-clock time
// in simulation code, exact float comparison, unseeded or
// goroutine-shared rng streams, out-of-band state mutation,
// allocations on //manet:hotpath functions, unsafe writes in par.Pool
// callbacks, and stale or catch-all //lint:ignore directives).
// Run `go run ./cmd/manetlint ./...` for the same report from the
// command line; DESIGN.md §10 catalogs the analyzers.
func TestManetlintClean(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	d := &analysis.Driver{Analyzers: lint.Analyzers()}
	findings, err := d.Run(root, root, []string{"./..."})
	if err != nil {
		t.Fatalf("manetlint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); see DESIGN.md §10 for the analyzer catalog and the //lint:ignore syntax", len(findings))
	}
}
