package manet_test

import (
	"testing"

	"repro/internal/lint"
)

// TestManetlintClean makes the determinism linter part of tier-1
// verification: `go test ./...` fails if any package in the module
// violates the invariants manetlint enforces (map-order-dependent
// iteration, stray randomness or wall-clock time in simulation code,
// exact float comparison, unseeded or goroutine-shared rng streams).
// Run `go run ./cmd/manetlint ./...` for the same report from the
// command line.
func TestManetlintClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	findings, err := lint.Run(root, root, []string{"./..."}, lint.DefaultConfig())
	if err != nil {
		t.Fatalf("manetlint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); see internal/lint for rules and the //lint:ignore syntax", len(findings))
	}
}
